package core

import (
	"fmt"
	"sort"

	"dualpar/internal/ext"
	"dualpar/internal/obs"
	"dualpar/internal/sim"
)

// crmServe is one CRM service phase (paper §IV-D): write back all dirty
// data first, then serve the batched prefetch. In both directions requests
// from all processes are sorted by file offset, adjacent requests merged,
// holes up to the threshold absorbed (write holes are read back first —
// read-modify-write), and the result issued as list I/O in ascending
// offset order from each chunk's home node.
func (pr *ProgramRun) crmServe(p *sim.Proc, wishFiles []string, wish map[string][]ext.Extent) {
	cfg := pr.r.cfg

	// Phase 1: collective writeback of everything dirty.
	for _, file := range pr.cache.DirtyFiles() {
		dirty := pr.cache.DirtyExtents(file)
		merged := ext.MergeWithHoles(dirty, cfg.HoleBytes)
		holes := ext.Holes(dirty, merged)
		if len(holes) > 0 {
			// Fill the holes with reads so larger writes can be formed.
			pr.issueByHome(p, file, holes, crmRead)
		}
		pr.issueByHome(p, file, merged, crmWrite)
		pr.cache.MarkClean(file)
		if a := pr.r.audit; a != nil {
			// Coherence oracle: everything this cycle marked clean must be
			// durable at a version at least as new as the writers recorded.
			if err := pr.r.cl.FS.VerifyDurable(file, merged); err != nil {
				a.Violatef("pfs.coherence", "%v", err)
			}
		}
	}
	if a := pr.r.audit; a != nil {
		a.RunProbes()
	}

	// Close out the previous cycle's mis-prefetch sample: the fraction of
	// prefetched data not consumed when this service phase began (§IV-C).
	// The sample closes on every served cycle — including writeback-only
	// cycles (write-quota suspensions), which would otherwise let
	// consumedCycle accumulate across cycles and skew the next ratio.
	if pr.prefetchedCycle > 0 {
		ratio := 1 - float64(pr.consumedCycle)/float64(pr.prefetchedCycle)
		if ratio < 0 {
			ratio = 0
		}
		pr.misSamples = append(pr.misSamples, ratio)
		pr.obs().Instant("cache.misprefetch", pr.ctrlTrack(), p.Now(),
			obs.F64("ratio", ratio))
		pr.checkMisPrefetchFastPath()
	}
	pr.consumedCycle = 0
	pr.prefetchedCycle = 0

	// Phase 2: batched prefetch of the ghosts' recorded reads.
	pr.crmPrefetch(p, wishFiles, wish)
}

// crmPrefetch serves a batched prefetch: sort, merge, absorb holes, align
// to the cache chunk, and issue per home node.
func (pr *ProgramRun) crmPrefetch(p *sim.Proc, wishFiles []string, wish map[string][]ext.Extent) {
	cfg := pr.r.cfg
	for _, file := range wishFiles {
		merged := ext.MergeWithHoles(wish[file], cfg.HoleBytes)
		aligned := ext.AlignTo(merged, cfg.Memcache.ChunkBytes)
		aligned = pr.clipToFile(file, aligned)
		if len(aligned) == 0 {
			continue
		}
		pr.prefetchedCycle += ext.Total(aligned)
		pr.issueByHome(p, file, aligned, crmPrefetch)
	}
}

type crmOp int

const (
	crmRead     crmOp = iota // read, discard (hole fill for writeback)
	crmWrite                 // write back dirty data
	crmPrefetch              // read into the global cache
)

// issueByHome partitions extents by their chunks' home nodes and issues one
// sorted list-I/O batch per home node, in parallel, waiting for all.
func (pr *ProgramRun) issueByHome(p *sim.Proc, file string, extents []ext.Extent, op crmOp) {
	chunk := pr.r.cfg.Memcache.ChunkBytes
	perHome := make(map[int][]ext.Extent)
	for _, piece := range ext.SplitAt(extents, chunk) {
		home := pr.cache.Home(piece.Off / chunk)
		perHome[home] = append(perHome[home], piece)
	}
	homes := make([]int, 0, len(perHome))
	for h := range perHome {
		homes = append(homes, h)
	}
	sort.Ints(homes)
	k := pr.r.cl.K
	wg := k.NewWaitGroup()
	for _, home := range homes {
		home := home
		batch := ext.Merge(perHome[home])
		wg.Add(1)
		k.Spawn(fmt.Sprintf("prog%d/crm-home%d", pr.id, home), func(hp *sim.Proc) {
			defer wg.Done()
			pr.superviseBatch(hp, file, batch, op, home)
		})
	}
	wg.Wait(p)
}

// superviseBatch runs one per-home CRM batch. With CRMTimeout armed it is
// a watchdog: a batch not done within the timeout is relaunched with
// bounded exponential backoff (abandoned attempts keep running; whichever
// finishes first completes the batch). A degraded home node therefore
// delays only its own batch by at most the escalation ladder, instead of
// pinning the whole collective phase to its stall.
func (pr *ProgramRun) superviseBatch(hp *sim.Proc, file string, batch []ext.Extent, op crmOp, home int) {
	cfg := pr.r.cfg
	if cfg.CRMTimeout <= 0 {
		pr.crmBatch(hp, file, batch, op, home, 0)
		return
	}
	k := pr.r.cl.K
	done := k.NewSignal()
	fin := false
	launch := func(attempt int) {
		k.Spawn(fmt.Sprintf("prog%d/crm-home%d/try%d", pr.id, home, attempt), func(ap *sim.Proc) {
			pr.crmBatch(ap, file, batch, op, home, attempt)
			fin = true
			done.Broadcast()
		})
	}
	launch(0)
	timeout := cfg.CRMTimeout
	backoff := cfg.CRMBackoff
	for retry := 0; ; retry++ {
		deadline := hp.Now() + timeout
		for !fin && hp.Now() < deadline {
			done.WaitTimeout(hp, deadline-hp.Now())
		}
		if fin {
			return
		}
		if retry >= cfg.CRMMaxRetries {
			// Out of retries: wait for an outstanding attempt — the home is
			// degraded, not gone, and the sim has no error path to lose a
			// collective batch into.
			for !fin {
				done.Wait(hp)
			}
			return
		}
		pr.obs().Instant("retry", pr.ctrlTrack(), hp.Now(),
			obs.I64("home", int64(home)), obs.I64("attempt", int64(retry+1)),
			obs.Str("file", file))
		if backoff > 0 {
			hp.Sleep(backoff)
			backoff *= 2
		}
		launch(retry + 1)
		timeout *= 2
	}
}

// crmBatch performs one attempt of a per-home batch. An I/O failure (every
// replica of a needed stripe down) is surfaced through pr.fail rather than
// stalling the batch: the attempt completes, the collective phase moves
// on, and the run finishes carrying the error.
func (pr *ProgramRun) crmBatch(hp *sim.Proc, file string, batch []ext.Extent, op crmOp, home, attempt int) {
	cl := pr.r.cl.FS.Client(home)
	rc := pr.obs().StartRequest(fmt.Sprintf("prog%d/crm/home%d", pr.id, home))
	start := hp.Now()
	verb := "crm-read"
	switch op {
	case crmWrite:
		verb = "crm-writeback"
		pr.fail(cl.Write(hp, file, batch, pr.crmOrigin, rc))
	case crmRead:
		pr.fail(cl.Read(hp, file, batch, pr.crmOrigin, rc))
	case crmPrefetch:
		verb = "crm-prefetch"
		if err := cl.Read(hp, file, batch, pr.crmOrigin, rc); err != nil {
			// A failed prefetch must not populate the cache with bytes the
			// servers never produced.
			pr.fail(err)
			break
		}
		pr.cache.PutCleanTraced(hp, home, rc, file, batch)
	}
	if rc.Traced() {
		pr.obs().Span(rc.ID, obs.StageRequest, rc.Track, start, hp.Now(),
			obs.Str("verb", verb), obs.I64("bytes", ext.Total(batch)),
			obs.I64("extents", int64(len(batch))),
			obs.I64("attempt", int64(attempt)))
	}
}

// clipToFile bounds prefetch extents to the file's known size (alignment
// must not read past EOF). The bound is the larger of the workload's
// declared static size and the size the metadata server currently records
// — files grown by writebacks keep their tails prefetchable.
func (pr *ProgramRun) clipToFile(file string, extents []ext.Extent) []ext.Extent {
	size := pr.r.cl.FS.FileSize(file)
	for _, fs := range pr.prog.Files() {
		if fs.Name == file && fs.Size > size {
			size = fs.Size
		}
	}
	if size == 0 {
		return extents
	}
	var out []ext.Extent
	for _, e := range extents {
		if c, ok := e.Clip(0, size); ok {
			out = append(out, c)
		}
	}
	return out
}

// checkMisPrefetchFastPath is PEC's immediate guard: once the last
// MisCyclesToDisable cycles were all above the mis-prefetch threshold, the
// data-driven mode is disabled on the spot, bounding the wasted prefetching
// to a few cycles (the paper's "one-time overhead", §V-F).
func (pr *ProgramRun) checkMisPrefetchFastPath() {
	cfg := pr.r.cfg
	n := cfg.MisCyclesToDisable
	if pr.disabled || len(pr.misSamples) < n {
		return
	}
	for _, s := range pr.misSamples[len(pr.misSamples)-n:] {
		if s <= cfg.MisPrefetchThreshold {
			return
		}
	}
	pr.disabled = true
	pr.setDataDriven(false)
}
