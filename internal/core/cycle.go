package core

import (
	"fmt"
	"time"

	"dualpar/internal/ext"
	"dualpar/internal/obs"
	"dualpar/internal/sim"
	"dualpar/internal/workloads"
)

// controller orchestrates data-driven cycles for one program (PEC + CRM
// coordination, paper §IV-C): ranks suspend as they miss the cache (reads)
// or fill their quota (writes); ghosts record future reads; when every
// ghost has paused and every live rank participates — or the expected
// cache-fill deadline expires — CRM writes back dirty data, serves the
// batched prefetch, and resumes everyone.
type controller struct {
	pr *ProgramRun

	state        int // 0 idle, 1 filling, 2 serving
	gen          int // cycle generation
	resume       *sim.Signal
	abort        *sim.Signal // interrupts sleeping ghosts when the cycle serves
	participants int
	ghostsActive int
	stopGhosts   bool
	wish         map[string][]ext.Extent
	wishFiles    []string                // insertion-ordered keys of wish (determinism)
	wish2        map[string][]ext.Extent // pipeline overflow (served in background)
	wish2Files   []string
	cycles       int64
}

const (
	ctrlIdle = iota
	ctrlFilling
	ctrlServing
)

func newController(pr *ProgramRun) *controller {
	return &controller{
		pr:     pr,
		resume: pr.r.cl.K.NewSignal(),
		abort:  pr.r.cl.K.NewSignal(),
		wish:   make(map[string][]ext.Extent),
		wish2:  make(map[string][]ext.Extent),
	}
}

// Cycles reports how many data-driven cycles have completed.
func (c *controller) Cycles() int64 { return c.cycles }

// addWish records requested extents for the coming batch.
func (c *controller) addWish(file string, extents []ext.Extent) {
	if _, ok := c.wish[file]; !ok {
		c.wishFiles = append(c.wishFiles, file)
	}
	c.wish[file] = append(c.wish[file], extents...)
}

// addWish2 records extents for the pipelined background wave.
func (c *controller) addWish2(file string, extents []ext.Extent) {
	if _, ok := c.wish2[file]; !ok {
		c.wish2Files = append(c.wish2Files, file)
	}
	c.wish2[file] = append(c.wish2[file], extents...)
}

// join registers a participant, arming the fill deadline on the first one.
func (c *controller) join(p *sim.Proc) int {
	if c.state == ctrlIdle {
		c.state = ctrlFilling
		c.stopGhosts = false
		c.pr.obs().Instant("cycle.fill", c.pr.ctrlTrack(), p.Now(),
			obs.I64("gen", int64(c.gen)))
		c.armDeadline()
	}
	c.participants++
	return c.gen
}

// armDeadline schedules the expected-time-to-fill cutoff: the quota divided
// by the recent per-rank consumption rate, clamped (paper §IV-C).
func (c *controller) armDeadline() {
	cfg := c.pr.r.cfg
	bps := c.pr.recentRankBps
	if bps <= 0 {
		bps = 1e6
	}
	wait := time.Duration(float64(cfg.CacheQuotaBytes) / bps * float64(time.Second))
	if wait < cfg.MinFillWait {
		wait = cfg.MinFillWait
	}
	if wait > cfg.MaxFillWait {
		wait = cfg.MaxFillWait
	}
	gen := c.gen
	c.pr.r.cl.K.After(wait, func() {
		if c.gen != gen || c.state != ctrlFilling {
			return
		}
		c.stopGhosts = true
		c.serve()
	})
}

// waitReadCycle suspends a rank that missed the cache: its pending request
// is guaranteed into the batch, a ghost is forked from the rank's current
// position, and the rank sleeps until the cycle is served.
func (c *controller) waitReadCycle(p *sim.Proc, rank int, gen workloads.RankGen, op workloads.Op, rc obs.Ctx) {
	myGen := c.join(p)
	susStart := p.Now()
	c.noteSuspend(p, rank, "read-miss")
	// The triggering request itself is always served (§IV-C: prefetch
	// includes the data the process and its peers are anticipated to read,
	// starting with what it is blocked on).
	c.addWish(op.File, op.Extents)
	c.startGhost(rank, gen, op)
	c.maybeServe()
	for c.gen == myGen {
		c.resume.Wait(p)
	}
	c.noteResume(p, rank)
	if rc.Traced() {
		c.pr.obs().Span(rc.ID, obs.StageSuspend, rc.Track, susStart, p.Now(),
			obs.Str("why", "read-miss"), obs.I64("gen", int64(myGen)))
	}
}

// waitWriteback suspends a rank whose dirty quota filled until the next
// cycle's writeback drains the cache. The caller accounts the time.
func (c *controller) waitWriteback(p *sim.Proc, rank int, rc obs.Ctx) {
	myGen := c.join(p)
	susStart := p.Now()
	c.noteSuspend(p, rank, "write-quota")
	c.maybeServe()
	for c.gen == myGen {
		c.resume.Wait(p)
	}
	c.noteResume(p, rank)
	if rc.Traced() {
		c.pr.obs().Span(rc.ID, obs.StageSuspend, rc.Track, susStart, p.Now(),
			obs.Str("why", "write-quota"), obs.I64("gen", int64(myGen)))
	}
}

// noteSuspend and noteResume mark one rank's suspension window on its own
// trace track.
func (c *controller) noteSuspend(p *sim.Proc, rank int, why string) {
	c.pr.obs().Instant("rank.suspend", fmt.Sprintf("prog%d/rank%d", c.pr.id, rank),
		p.Now(), obs.Str("why", why), obs.I64("gen", int64(c.gen)))
}

func (c *controller) noteResume(p *sim.Proc, rank int) {
	c.pr.obs().Instant("rank.resume", fmt.Sprintf("prog%d/rank%d", c.pr.id, rank),
		p.Now(), obs.I64("gen", int64(c.gen)))
}

// startGhost forks the pre-execution for one suspended rank. The ghost
// re-executes computation (charged in virtual time on spare cores), records
// read requests without issuing them, skips communication and writes, and
// pauses at the rank's quota (§IV-C).
func (c *controller) startGhost(rank int, gen workloads.RankGen, pending workloads.Op) {
	c.ghostsActive++
	myGen := c.gen
	clone := gen.Clone()
	env := newGhostEnv()
	env.record(pending.File, pending.Extents)
	quota := c.pr.r.cfg.CacheQuotaBytes
	limit := quota * int64(c.pr.r.cfg.PipelineDepth)
	recorded := pending.Bytes()
	k := c.pr.r.cl.K
	k.Spawn(fmt.Sprintf("prog%d/ghost%d", c.pr.id, rank), func(p *sim.Proc) {
		defer func() {
			if c.gen == myGen {
				c.ghostsActive--
				c.maybeServe()
			}
		}()
		// Phase 1 (the paper's pre-execution): record up to the quota with
		// the computation retained (§IV-C). A serve — deadline or full
		// participation — interrupts any in-progress compute via abort.
		interrupted := false
		for recorded < quota && !interrupted {
			if c.stopGhosts || c.gen != myGen {
				interrupted = true
				break
			}
			op := clone.Next(env)
			switch op.Kind {
			case workloads.OpDone:
				return
			case workloads.OpCompute:
				if c.abort.WaitTimeout(p, op.Dur) {
					interrupted = true // cycle is serving; stop sleeping
				}
			case workloads.OpRead:
				if c.gen != myGen {
					return
				}
				c.addWish(op.File, op.Extents)
				env.record(op.File, op.Extents)
				recorded += op.Bytes()
			case workloads.OpWrite, workloads.OpBarrier:
				// Writes produce no effects during pre-execution;
				// synchronization is skipped (peers' ghosts may not exist).
			}
		}
		if c.gen != myGen {
			return
		}
		// Phase 2 (extension, PipelineDepth > 1): record the overflow wave
		// in stripped mode (Strategy-2 style, computation skipped):
		// prediction only, instantaneous, completed before the serve
		// snapshot — the mis-prefetch guard is the safety net for the
		// accuracy it gives up.
		for recorded < limit {
			op := clone.Next(env)
			switch op.Kind {
			case workloads.OpDone:
				return
			case workloads.OpRead:
				c.addWish2(op.File, op.Extents)
				env.record(op.File, op.Extents)
				recorded += op.Bytes()
			case workloads.OpCompute, workloads.OpWrite, workloads.OpBarrier:
			}
		}
	})
}

// maybeServe starts the CRM service phase once every live rank participates
// and all ghosts have paused. If all current ghosts have paused but some
// live ranks have not joined, a short grace period lets late lockstep ranks
// batch in before serving; the fill deadline remains the hard stop.
func (c *controller) maybeServe() {
	if c.state != ctrlFilling {
		return
	}
	alive := c.pr.prog.Ranks() - c.pr.doneRanks
	if c.participants >= alive && c.ghostsActive == 0 {
		c.serve()
		return
	}
	if c.ghostsActive == 0 && c.participants > 0 {
		gen, count := c.gen, c.participants
		grace := c.pr.r.cfg.JoinGrace
		c.pr.r.cl.K.After(grace, func() {
			if c.state == ctrlFilling && c.gen == gen && c.participants == count && c.ghostsActive == 0 {
				c.serve()
			}
		})
	}
}

// serve snapshots the batch and runs CRM in a dedicated proc.
func (c *controller) serve() {
	if c.state != ctrlFilling {
		return
	}
	c.state = ctrlServing
	c.stopGhosts = true
	c.pr.obs().Instant("cycle.serve", c.pr.ctrlTrack(), c.pr.r.cl.K.Now(),
		obs.I64("gen", int64(c.gen)), obs.I64("participants", int64(c.participants)))
	// Wake sleeping ghosts so they can flush their pipelined overflow
	// before the snapshot; their wakeups run before the After(0) event.
	c.abort.Broadcast()
	k := c.pr.r.cl.K
	k.After(0, func() {
		wish := c.wish
		files := c.wishFiles
		wish2 := c.wish2
		files2 := c.wish2Files
		c.wish = make(map[string][]ext.Extent)
		c.wishFiles = nil
		c.wish2 = make(map[string][]ext.Extent)
		c.wish2Files = nil
		k.Spawn(fmt.Sprintf("prog%d/crm", c.pr.id), func(p *sim.Proc) {
			c.pr.crmServe(p, files, wish)
			c.finishCycle()
			// The pipelined wave runs after the ranks resume, overlapping
			// the fetch with their consumption of the first wave.
			if len(files2) > 0 {
				c.pr.crmPrefetch(p, files2, wish2)
			}
		})
	})
}

// finishCycle resumes all suspended ranks and opens the next generation.
func (c *controller) finishCycle() {
	c.cycles++
	c.pr.obs().Instant("cycle.resume", c.pr.ctrlTrack(), c.pr.r.cl.K.Now(),
		obs.I64("cycle", c.cycles), obs.I64("gen", int64(c.gen)))
	c.gen++
	c.state = ctrlIdle
	c.participants = 0
	c.ghostsActive = 0
	for i := range c.pr.dirtyUsed {
		c.pr.dirtyUsed[i] = 0
	}
	c.resume.Broadcast()
}

// ghostEnv hides the content of reads recorded but not served during
// pre-execution: the generator sees zeros for them, reproducing the paper's
// mis-prediction under data dependence.
type ghostEnv struct {
	recorded map[string][]ext.Extent
}

func newGhostEnv() *ghostEnv {
	return &ghostEnv{recorded: make(map[string][]ext.Extent)}
}

func (e *ghostEnv) record(file string, extents []ext.Extent) {
	xs := e.recorded[file]
	for _, x := range extents {
		xs = ext.Insert(xs, x)
	}
	e.recorded[file] = xs
}

// Value implements workloads.Env.
func (e *ghostEnv) Value(file string, off int64) int64 {
	for _, r := range e.recorded[file] {
		if r.Contains(off, 1) {
			return 0
		}
	}
	return workloads.Content(file, off)
}
