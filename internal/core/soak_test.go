package core

import (
	"testing"
	"time"

	"dualpar/internal/workloads"
)

// TestSoakMixedPrograms runs four different programs concurrently, each
// under a different execution mode, on one cluster — the messiest realistic
// configuration — and checks global invariants: everything finishes, bytes
// balance, no dirty data is stranded, and the run is deterministic.
func TestSoakMixedPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	run := func(seed int64) []time.Duration {
		cl := smallCluster(seed)
		cfg := DefaultConfig()
		cfg.SlotEvery = 200 * time.Millisecond
		r := NewRunner(cl, cfg)

		m := workloads.DefaultMPIIOTest()
		m.Procs = 16
		m.FileBytes = 16 << 20
		m.FileName = "soak-a.dat"

		n := workloads.DefaultNoncontig()
		n.Procs = 16
		n.FileBytes = 8 << 20
		n.FileName = "soak-b.dat"

		s := workloads.DefaultS3asim()
		s.Procs = 8
		s.Queries = 8
		s.FragmentBytes = 1 << 20
		s.DBName = "soak-db.dat"
		s.OutName = "soak-out.dat"

		b := workloads.DefaultBTIO()
		b.Procs = 16
		b.TotalBytes = 4 << 20
		b.Steps = 2
		b.FileName = "soak-c.dat"

		runs := []*ProgramRun{
			r.Add(m, ModeDualPar, AddOptions{RanksPerNode: 8}),
			r.Add(n, ModeCollective, AddOptions{RanksPerNode: 8, FirstNodeIndex: 2, StartAt: 50 * time.Millisecond}),
			r.Add(s, ModeDataDriven, AddOptions{RanksPerNode: 4, FirstNodeIndex: 4, StartAt: 100 * time.Millisecond}),
			r.Add(b, ModeStrategy2, AddOptions{RanksPerNode: 8, FirstNodeIndex: 6, StartAt: 150 * time.Millisecond}),
		}
		if !r.Run(time.Hour) {
			t.Fatalf("soak did not finish")
		}
		var ends []time.Duration
		for i, pr := range runs {
			if pr.Instr().TotalBytes() <= 0 {
				t.Fatalf("program %d moved no bytes", i)
			}
			if pr.cache != nil && pr.cache.DirtyBytes() != 0 {
				t.Fatalf("program %d stranded dirty bytes", i)
			}
			ends = append(ends, pr.EndedAt)
		}
		return ends
	}
	a := run(9)
	bEnds := run(9)
	for i := range a {
		if a[i] != bEnds[i] {
			t.Fatalf("soak nondeterministic: program %d ended %v vs %v", i, a[i], bEnds[i])
		}
	}
	// A different seed must shift the timings.
	c := run(10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("seed had no effect on the soak run")
	}
}
