package core

import (
	"testing"
	"time"

	"dualpar/internal/cluster"
	"dualpar/internal/fault"
	"dualpar/internal/workloads"
)

// TestEMCIdleSlotPreservesHysteresis is the regression test for the
// empty-slot bug: a slot with no instrumented rank activity (dIO+dComp ==
// 0) used to fall into the default branch of the mode-switch logic and
// reset the consecutive-slot counters, so a program whose ranks spend
// whole slots suspended on cycle fills could never accumulate the two
// qualifying (or two low) slots hysteresis requires.
func TestEMCIdleSlotPreservesHysteresis(t *testing.T) {
	cl := smallCluster(1)
	r := NewRunner(cl, DefaultConfig())
	pr := r.Add(smallMPIIOTest(false), ModeDualPar, AddOptions{RanksPerNode: 4})
	e := r.emc
	e.initState()

	// First qualifying slot arms the counter but must not switch yet.
	e.applyDecision(0, pr, true, 0.95, 100, 0, 0)
	if pr.dataDriven {
		t.Fatal("switched data-driven after a single qualifying slot")
	}
	if e.highSlots[0] != 1 {
		t.Fatalf("highSlots = %d after one qualifying slot, want 1", e.highSlots[0])
	}

	// An idle slot carries no evidence and must not reset the counter.
	e.applyDecision(0, pr, false, 0, 0, 0, 0)
	if e.highSlots[0] != 1 {
		t.Fatalf("idle slot reset highSlots to %d", e.highSlots[0])
	}

	// The second qualifying slot completes the hysteresis.
	e.applyDecision(0, pr, true, 0.95, 100, 0, 0)
	if !pr.dataDriven {
		t.Fatal("two qualifying slots separated by an idle slot did not switch data-driven on")
	}

	// Same protection for the revert direction.
	e.applyDecision(0, pr, true, 0.1, 100, 0, 0)
	if e.lowSlots[0] != 1 {
		t.Fatalf("lowSlots = %d after one low slot, want 1", e.lowSlots[0])
	}
	e.applyDecision(0, pr, false, 0, 0, 0, 0)
	if e.lowSlots[0] != 1 {
		t.Fatalf("idle slot reset lowSlots to %d", e.lowSlots[0])
	}
	e.applyDecision(0, pr, true, 0.1, 100, 0, 0)
	if pr.dataDriven {
		t.Fatal("two low slots separated by an idle slot did not revert to computation-driven")
	}
}

// A genuinely non-qualifying active slot must still reset the counters
// (the original hysteresis semantics).
func TestEMCActiveNonQualifyingSlotResets(t *testing.T) {
	cl := smallCluster(1)
	r := NewRunner(cl, DefaultConfig())
	pr := r.Add(smallMPIIOTest(false), ModeDualPar, AddOptions{RanksPerNode: 4})
	e := r.emc
	e.initState()

	e.applyDecision(0, pr, true, 0.95, 100, 0, 0)
	// Active but not qualifying: I/O-bound without seek improvement.
	e.applyDecision(0, pr, true, 0.95, 1, 0, 0)
	if e.highSlots[0] != 0 {
		t.Fatalf("non-qualifying active slot left highSlots = %d, want 0", e.highSlots[0])
	}
	e.applyDecision(0, pr, true, 0.95, 100, 0, 0)
	if pr.dataDriven {
		t.Fatal("switched with only one qualifying slot since the reset")
	}
}

func TestMedianRobustToStraggler(t *testing.T) {
	xs := []float64{5, 4, 1000, 6}
	if got := median(xs); got != 5.5 {
		t.Fatalf("median(%v) = %g, want 5.5", xs, got)
	}
	if xs[2] != 1000 {
		t.Fatal("median mutated its input")
	}
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd-length median = %g, want 2", got)
	}
	if got := median([]float64{7}); got != 7 {
		t.Fatalf("single-element median = %g, want 7", got)
	}
}

// TestEMCSkipsCrashedServerSamples: the slot that spans a crash still has
// partial-slot disk accesses from the dead server; its parked-head sample
// must not enter the seek-distance median. Server 1 crashes mid-slot; the
// first slot's per-server samples must exclude it while the live servers
// (which did I/O the whole slot) remain.
func TestEMCSkipsCrashedServerSamples(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.DataServers = 3
	d := cfg.Disk
	d.Sectors = 1 << 25
	cfg.Disk = d
	cfg.Seed = 1
	cfg.PFS.Replicas = 2
	cfg.PFS.RequestTimeout = 100 * time.Millisecond
	cfg.PFS.MaxRetries = 4
	cfg.PFS.RetryBackoff = 10 * time.Millisecond
	cfg.Faults = &fault.Schedule{Windows: []fault.Window{
		{Kind: fault.ServerCrash, Target: 1, Start: 500 * time.Millisecond},
	}}
	cl := cluster.New(cfg)
	m := workloads.DefaultMPIIOTest()
	m.Procs = 8
	m.FileBytes = 16 << 20
	r := NewRunner(cl, DefaultConfig())
	pr := r.Add(m, ModeDualPar, AddOptions{RanksPerNode: 4})
	if !r.Run(time.Hour) {
		t.Fatal("run did not finish")
	}
	if pr.Elapsed() < time.Second {
		t.Skipf("workload finished in %v, before the first EMC slot", pr.Elapsed())
	}
	if cl.FS.Alive(1) {
		t.Fatal("server 1 should be down in the client view")
	}
	if len(r.emc.Decisions) == 0 {
		t.Fatal("no EMC decisions recorded")
	}
	// The first slot (t=1s) spans the crash at 500ms: server 1 did I/O for
	// half the slot, so without the liveness filter it would contribute a
	// third sample.
	first := r.emc.Decisions[0]
	if len(first.PerServerSeek) > 2 {
		t.Fatalf("first slot sampled %d servers, want <= 2 (crashed server filtered)",
			len(first.PerServerSeek))
	}
}
