// Package core implements DualPar (paper §IV): opportunistic dual-mode
// execution of parallel programs. Its three modules follow the paper's
// architecture:
//
//   - EMC (Execution Mode Control), conceptually on the metadata server,
//     decides per program whether to run computation-driven or data-driven,
//     from the program's I/O ratio and the ratio of observed disk seek
//     distance (SeekDist, from per-server locality daemons) to the best
//     achievable request distance (ReqDist, from client-side request logs).
//
//   - PEC (Process Execution Control), in the MPI-IO layer, suspends a rank
//     that misses the global cache, forks a ghost (a clone of the rank's
//     deterministic op generator) that re-executes computation and records
//     future read requests until the rank's cache quota is filled.
//
//   - CRM (Cache and Request Management) collects all ranks' recorded
//     requests, sorts and merges them, fills small holes, aligns to the
//     64 KB chunk, and issues one sorted list-I/O batch per data server;
//     fetched chunks land in a memcached-style global cache with
//     round-robin chunk homes. Data-driven writes are buffered dirty in the
//     cache and collectively written back when quotas fill.
//
// The package also implements the paper's baselines: computation-driven
// vanilla MPI-IO (Strategy 1), application-level pre-execution prefetching
// with immediate issue (Strategy 2, §II), and collective I/O.
package core

import (
	"fmt"
	"time"

	"dualpar/internal/memcache"
)

// Config carries DualPar's tunables; defaults follow the paper's prototype.
type Config struct {
	// CacheQuotaBytes is each process's share of the global cache (1 MB
	// default, §V).
	CacheQuotaBytes int64
	// TImprovement is the aveSeekDist/aveReqDist threshold for entering
	// data-driven mode. The paper's prototype uses 3 and reports the system
	// is insensitive to the value; in this substrate the measured
	// improvement is ~6 for a healthy sequential stream and >100 under
	// inter-program interference, so the default sits at 8 — anywhere in
	// that wide gap behaves identically (see the T-sensitivity ablation
	// bench).
	TImprovement float64
	// IORatioThreshold is the minimum I/O intensity for data-driven mode
	// (0.8, §IV-B).
	IORatioThreshold float64
	// MisPrefetchThreshold disables data-driven mode when the mean
	// mis-prefetch ratio exceeds it (0.2, §IV-C).
	MisPrefetchThreshold float64
	// HoleBytes is the largest unrequested hole absorbed when CRM merges
	// requests (§IV-D).
	HoleBytes int64
	// SlotEvery is EMC's sampling slot.
	SlotEvery time.Duration
	// MinFillWait/MaxFillWait clamp the expected-time-to-fill deadline that
	// stops lagging pre-executions (§IV-C).
	MinFillWait time.Duration
	MaxFillWait time.Duration
	// JoinGrace is how long a cycle keeps waiting for more ranks to join
	// after every current participant's ghost has paused; it lets
	// lockstepped ranks batch together without letting one straggler stall
	// the cycle until the fill deadline.
	JoinGrace time.Duration
	// MisCyclesToDisable is PEC's fast path: after this many consecutive
	// cycles whose mis-prefetch ratio exceeds MisPrefetchThreshold, the
	// data-driven mode is turned off immediately (EMC's slot-based check
	// remains the general mechanism).
	MisCyclesToDisable int
	// PipelineDepth extends data-driven cycles beyond the paper (an
	// extension, off at the default of 1): ghosts record up to
	// PipelineDepth x quota; the first quota's worth is served before the
	// ranks resume (the paper's cycle), and the remainder is prefetched in
	// the background *while* the ranks consume — adding Strategy 2's
	// compute/I/O overlap to Strategy 3's request ordering.
	PipelineDepth int
	// Strategy2WindowBytes bounds how far ahead the Strategy-2 prefetcher
	// runs of consumption (total across ranks; each rank gets an equal
	// share). The default keeps per-rank prefetch depth shallow — enough
	// to hide I/O under computation, but not so deep that the immediate-
	// issue stream turns into DualPar-style batches (the paper's Strategy 2
	// never approaches Strategy 3's disk efficiency).
	Strategy2WindowBytes int64
	// CRMTimeout, when positive, arms a watchdog on every per-home-node
	// CRM batch: a batch not completed within the timeout is relaunched
	// with bounded exponential backoff (the abandoned attempt keeps
	// running; whichever finishes first completes the batch). Zero (the
	// default) disables the watchdog, leaving the timeline untouched. Set
	// it above the PFS-level RequestTimeout so the layers escalate rather
	// than race.
	CRMTimeout time.Duration
	// CRMMaxRetries bounds relaunches per batch; afterwards CRM waits for
	// the outstanding attempts.
	CRMMaxRetries int
	// CRMBackoff is slept before the first relaunch and doubles each time.
	CRMBackoff time.Duration
	// Audit arms the default-off invariant oracles (package check): byte
	// conservation across scheduler, disk, store, and PFS ledgers; cache
	// used/dirty accounting; per-cycle writeback coherence against the
	// integrity tracker; and monotone per-proc virtual time. Off (the
	// default), every hook is a nil handle and the run's timeline and
	// output stay byte-identical to an unaudited build.
	Audit bool
	// Memcache configures the global cache (chunk size should match the
	// PVFS2 stripe unit).
	Memcache memcache.Config
}

// DefaultConfig returns the paper's prototype parameters.
func DefaultConfig() Config {
	return Config{
		CacheQuotaBytes:      1 << 20,
		TImprovement:         8,
		IORatioThreshold:     0.8,
		MisPrefetchThreshold: 0.2,
		HoleBytes:            64 << 10,
		SlotEvery:            time.Second,
		MinFillWait:          20 * time.Millisecond,
		MaxFillWait:          2 * time.Second,
		JoinGrace:            10 * time.Millisecond,
		MisCyclesToDisable:   3,
		PipelineDepth:        1,
		Strategy2WindowBytes: 512 << 10,
		Memcache:             memcache.DefaultConfig(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.CacheQuotaBytes < 0:
		return fmt.Errorf("core: CacheQuotaBytes %d", c.CacheQuotaBytes)
	case c.TImprovement <= 0:
		return fmt.Errorf("core: TImprovement %g", c.TImprovement)
	case c.IORatioThreshold <= 0 || c.IORatioThreshold > 1:
		return fmt.Errorf("core: IORatioThreshold %g", c.IORatioThreshold)
	case c.MisPrefetchThreshold <= 0 || c.MisPrefetchThreshold > 1:
		return fmt.Errorf("core: MisPrefetchThreshold %g", c.MisPrefetchThreshold)
	case c.HoleBytes < 0:
		return fmt.Errorf("core: HoleBytes %d", c.HoleBytes)
	case c.SlotEvery <= 0:
		return fmt.Errorf("core: SlotEvery %v", c.SlotEvery)
	case c.MinFillWait <= 0 || c.MaxFillWait < c.MinFillWait:
		return fmt.Errorf("core: fill wait range [%v,%v]", c.MinFillWait, c.MaxFillWait)
	case c.JoinGrace < 0:
		return fmt.Errorf("core: JoinGrace %v", c.JoinGrace)
	case c.MisCyclesToDisable <= 0:
		return fmt.Errorf("core: MisCyclesToDisable %d", c.MisCyclesToDisable)
	case c.PipelineDepth <= 0:
		return fmt.Errorf("core: PipelineDepth %d", c.PipelineDepth)
	case c.Strategy2WindowBytes <= 0:
		return fmt.Errorf("core: Strategy2WindowBytes %d", c.Strategy2WindowBytes)
	case c.CRMTimeout < 0:
		return fmt.Errorf("core: CRMTimeout %v", c.CRMTimeout)
	case c.CRMMaxRetries < 0:
		return fmt.Errorf("core: CRMMaxRetries %d", c.CRMMaxRetries)
	case c.CRMBackoff < 0:
		return fmt.Errorf("core: CRMBackoff %v", c.CRMBackoff)
	}
	return c.Memcache.Validate()
}

// Mode selects a program's execution scheme.
type Mode int

// Execution modes: the paper's baselines and DualPar.
const (
	// ModeVanilla is Strategy 1: computation-driven vanilla MPI-IO.
	ModeVanilla Mode = iota
	// ModeCollective uses collective (two-phase) I/O for every call.
	ModeCollective
	// ModeStrategy2 is application-level pre-execution prefetching with
	// immediate request issue (§II).
	ModeStrategy2
	// ModeDualPar is full DualPar: EMC switches data-driven mode on and
	// off opportunistically.
	ModeDualPar
	// ModeDataDriven is DualPar with data-driven mode forced on (the paper
	// pins it for the single-application comparisons).
	ModeDataDriven
)

// ParseMode converts a mode name (as printed by String) back to a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "vanilla":
		return ModeVanilla, nil
	case "collective":
		return ModeCollective, nil
	case "strategy2":
		return ModeStrategy2, nil
	case "dualpar":
		return ModeDualPar, nil
	case "data-driven":
		return ModeDataDriven, nil
	}
	return 0, fmt.Errorf("core: unknown mode %q", s)
}

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeVanilla:
		return "vanilla"
	case ModeCollective:
		return "collective"
	case ModeStrategy2:
		return "strategy2"
	case ModeDualPar:
		return "dualpar"
	case ModeDataDriven:
		return "data-driven"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}
