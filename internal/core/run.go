package core

import (
	"fmt"
	"time"

	"dualpar/internal/burst"
	"dualpar/internal/check"
	"dualpar/internal/cluster"
	"dualpar/internal/ext"
	"dualpar/internal/memcache"
	"dualpar/internal/mpi"
	"dualpar/internal/mpiio"
	"dualpar/internal/obs"
	"dualpar/internal/sim"
	"dualpar/internal/tenant"
	"dualpar/internal/workloads"
)

// Runner executes a set of programs on a cluster, each under its own
// execution mode, with one EMC daemon overseeing all DualPar programs.
type Runner struct {
	cl      *cluster.Cluster
	cfg     Config
	progs   []*ProgramRun
	emc     *emc
	audit   *check.Auditor // nil unless cfg.Audit
	started bool           // Run has begun; later Adds start immediately
}

// NewRunner creates a runner on a cluster.
func NewRunner(cl *cluster.Cluster, cfg Config) *Runner {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	r := &Runner{cl: cl, cfg: cfg}
	if cfg.Audit {
		r.audit = newRunAuditor(r)
	}
	r.emc = newEMC(r)
	return r
}

// Cluster returns the underlying cluster.
func (r *Runner) Cluster() *cluster.Cluster { return r.cl }

// Config returns the DualPar configuration.
func (r *Runner) Config() Config { return r.cfg }

// Programs returns the registered program runs.
func (r *Runner) Programs() []*ProgramRun { return r.progs }

// EMCDecisions returns the EMC daemon's per-slot evaluation log.
func (r *Runner) EMCDecisions() []Decision { return r.emc.Decisions }

// AddOptions tunes one program's execution.
type AddOptions struct {
	// RanksPerNode places this many ranks per compute node (default 8).
	RanksPerNode int
	// FirstNodeIndex offsets the program's first compute node within the
	// cluster's compute nodes (programs can share or use disjoint nodes).
	FirstNodeIndex int
	// StartAt delays the program's start.
	StartAt time.Duration
	// MPIIO overrides the MPI-IO hints (zero value = mpiio defaults).
	MPIIO mpiio.Config
	// Tenant attributes the program to a tenant for grant arbitration and
	// cache partitioning (meaningful only on a tenanted cluster).
	Tenant int
	// OnDone, when non-nil, fires once when the program ends (clean finish
	// or client crash) — closed-loop drivers block on it before submitting
	// their next job. It runs in simulation context.
	OnDone func()
}

// Add registers a program with the given execution mode. Programs added
// before Run start when Run does; programs added while the simulation is
// running (from simulation context — an arrival or closed-loop driver
// proc) start immediately, with opts.StartAt interpreted as absolute
// virtual time, so it must not lie in the past.
func (r *Runner) Add(prog workloads.Program, mode Mode, opts AddOptions) *ProgramRun {
	if opts.RanksPerNode <= 0 {
		opts.RanksPerNode = 8
	}
	mcfg := opts.MPIIO
	if mcfg.CollectiveBufferBytes == 0 {
		mcfg = mpiio.DefaultConfig()
	}
	id := len(r.progs)
	first := cluster.ComputeNodeBase + opts.FirstNodeIndex
	placement := mpi.BlockPlacement(prog.Ranks(), opts.RanksPerNode, first)
	pr := &ProgramRun{
		r:       r,
		id:      id,
		prog:    prog,
		mode:    mode,
		startAt: opts.StartAt,
		mpiioC:  mcfg,
		world:   mpi.NewWorld(r.cl.K, r.cl.Net, placement),
		instr:   mpiio.NewInstr(prog.Ranks()),
		files:   make(map[string]*mpiio.File),
		tenant:  opts.Tenant,
		onDone:  opts.OnDone,
	}
	pr.origins = make([]int, prog.Ranks())
	for i := range pr.origins {
		pr.origins[i] = id*10000 + i + 1
	}
	pr.crmOrigin = id*10000 + 9999
	// Distinct compute nodes hosting this program, in rank order.
	seen := make(map[int]bool)
	for _, n := range placement {
		if !seen[n] {
			seen[n] = true
			pr.nodes = append(pr.nodes, n)
		}
	}
	switch mode {
	case ModeDataDriven:
		// A pinned program on a tenanted cluster still needs a grant; if
		// the arbiter denies it now, the EMC retries every slot until one
		// frees up (the program runs conventionally meanwhile).
		pr.dataDriven = pr.acquireGrant()
		fallthrough
	case ModeDualPar, ModeStrategy2:
		mc := r.cfg.Memcache
		pr.cache = memcache.New(r.cl.K, r.cl.Net, mc, pr.nodes)
		pr.cache.SetObs(r.cl.Obs())
		if arb := r.cl.Arbiter(); arb != nil {
			pr.cache.SetQuota(arb.Quota(pr.tenant))
		}
		if r.audit != nil {
			pr.cache.SetAudit(r.audit)
			r.audit.RegisterProbe(fmt.Sprintf("memcache.used.prog%d", id), pr.cache.CheckUsed)
		}
	}
	if mode == ModeDualPar || mode == ModeDataDriven {
		pr.ctrl = newController(pr)
	}
	pr.recentRankBps = 4e6 // until EMC measures real throughput
	if inj := r.cl.Faults(); inj.HasClientCrashWindows() {
		// A client crash aborts the whole job (every program whose rank
		// space covers the crashed rank). Registered here, before the
		// kernel runs, like the server-state listeners.
		inj.OnClientState(func(rank int, at time.Duration) {
			if rank >= 0 && rank < pr.prog.Ranks() {
				pr.clientCrash(at)
			}
		})
	}
	r.progs = append(r.progs, pr)
	if r.started {
		pr.start()
		r.emc.arm() // the slot chain may have drained with everything done
	}
	return pr
}

// Run starts every registered program and the EMC daemon, then executes the
// simulation until all programs finish or until maxTime of virtual time
// elapses. It reports whether everything finished.
func (r *Runner) Run(maxTime time.Duration) bool {
	r.started = true
	for _, pr := range r.progs {
		pr.start()
	}
	r.emc.start()
	r.cl.K.RunUntil(maxTime)
	finished := true
	for _, pr := range r.progs {
		if !pr.Done {
			finished = false
		}
	}
	if r.audit != nil {
		for _, pr := range r.progs {
			// A crashed program legitimately dies with dirty cached bytes;
			// only a clean finish promises the drain.
			if pr.Done && !pr.crashed && pr.cache != nil {
				r.audit.Checkf(pr.cache.DirtyBytes() == 0, "memcache.dirty.drain",
					"program %d finished with %d dirty bytes in its cache",
					pr.id, pr.cache.DirtyBytes())
			}
		}
		if finished {
			// Byte-conservation ledgers are exact only at quiescence.
			r.audit.RunFinalProbes()
		} else {
			r.audit.RunProbes()
		}
	}
	return finished
}

// ProgramRun is one program instance under one execution mode.
type ProgramRun struct {
	r       *Runner
	id      int
	prog    workloads.Program
	mode    Mode
	startAt time.Duration
	mpiioC  mpiio.Config
	world   *mpi.World
	instr   *mpiio.Instr
	files   map[string]*mpiio.File
	origins []int
	nodes   []int
	cache   *memcache.Cache
	ctrl    *controller
	s2      *strategy2

	crmOrigin  int
	dataDriven bool
	disabled   bool          // data-driven permanently disabled by mis-prefetch
	crashed    bool          // aborted by an injected client crash
	tenant     int           // owning tenant on a tenanted cluster
	grant      *tenant.Grant // live data-driven grant from the arbiter
	onDone     func()

	// epochs tracks sealed checkpoint epochs per rank (lazily created at
	// the first OpSeal; nil for programs without checkpoint epochs).
	epochs *burst.Epochs

	// Mis-prefetch accounting (per prefetch cycle).
	prefetchedCycle int64
	consumedCycle   int64
	misSamples      []float64

	// Per-rank dirty bytes buffered in the data-driven cache.
	dirtyUsed []int64

	recentRankBps float64 // EMC-updated per-rank consumption rate

	StartedAt time.Duration
	EndedAt   time.Duration
	doneRanks int
	Done      bool
	ioErr     error // first surfaced I/O failure (e.g. pfs.ErrRetriesExhausted)

	// ModeSwitches logs (time, on/off) transitions for Fig 7-style plots.
	ModeSwitches []ModeSwitch
}

// ModeSwitch records a data-driven mode transition.
type ModeSwitch struct {
	At time.Duration
	On bool
}

// Prog returns the workload.
func (pr *ProgramRun) Prog() workloads.Program { return pr.prog }

// Mode returns the configured execution mode.
func (pr *ProgramRun) Mode() Mode { return pr.mode }

// Instr returns the program's MPI-IO instrumentation.
func (pr *ProgramRun) Instr() *mpiio.Instr { return pr.instr }

// World returns the program's communicator.
func (pr *ProgramRun) World() *mpi.World { return pr.world }

// Cache returns the program's global cache (nil unless DualPar/Strategy2).
func (pr *ProgramRun) Cache() *memcache.Cache { return pr.cache }

// DataDriven reports whether the program currently runs data-driven.
func (pr *ProgramRun) DataDriven() bool { return pr.dataDriven }

// Tenant returns the program's owning tenant (0 on untenanted clusters).
func (pr *ProgramRun) Tenant() int { return pr.tenant }

// Elapsed is the program's measured execution time.
func (pr *ProgramRun) Elapsed() time.Duration {
	if !pr.Done {
		return 0
	}
	return pr.EndedAt - pr.StartedAt
}

// MisSamples returns the recorded per-cycle mis-prefetch ratios.
func (pr *ProgramRun) MisSamples() []float64 { return pr.misSamples }

// Err returns the first I/O failure any of the program's ranks or its CRM
// surfaced (nil when the run was clean). A run can be Done with a non-nil
// Err: I/O errors mean data loss, not a wedged program.
func (pr *ProgramRun) Err() error { return pr.ioErr }

// fail records the program's first I/O failure. Failures do not stop the
// run — the paper's library would report the error to the application and
// keep serving other ranks — but they are surfaced in Err() and the trace
// instead of being swallowed into a stall.
func (pr *ProgramRun) fail(err error) {
	if err == nil {
		return
	}
	if pr.ioErr == nil {
		pr.ioErr = err
	}
	pr.obs().Instant("io.error", pr.ctrlTrack(), pr.r.cl.K.Now(),
		obs.I64("program", int64(pr.id)), obs.Str("error", err.Error()))
}

// Cycles reports completed data-driven cycles (0 without a controller).
func (pr *ProgramRun) Cycles() int64 {
	if pr.ctrl == nil {
		return 0
	}
	return pr.ctrl.cycles
}

// obs returns the cluster-wide collector (nil when tracing is off).
func (pr *ProgramRun) obs() *obs.Collector { return pr.r.cl.Obs() }

// ctrlTrack is the program's control-plane trace track.
func (pr *ProgramRun) ctrlTrack() string { return fmt.Sprintf("prog%d/ctrl", pr.id) }

// acquireGrant asks the cluster's arbiter for a data-driven grant (always
// granted on an untenanted cluster — no arbiter, no accounting). The
// grant is revocable: when another tenant reclaims its reserved share the
// arbiter calls back into revokeGrant and this program reverts to
// conventional mode mid-run.
func (pr *ProgramRun) acquireGrant() bool {
	arb := pr.r.cl.Arbiter()
	if arb == nil || pr.grant != nil {
		return true
	}
	pr.grant = arb.TryAcquire(pr.tenant, pr.revokeGrant)
	return pr.grant != nil
}

// releaseGrant returns the program's grant, if it holds one.
func (pr *ProgramRun) releaseGrant() {
	if pr.grant == nil {
		return
	}
	g := pr.grant
	pr.grant = nil
	g.Release()
}

// revokeGrant is the arbiter's reclaim callback: an under-reservation
// tenant needed the slot, so this program falls back to conventional mode
// for the rest of its run (any rank mid-wait on a cache fill re-issues the
// read against the PFS). The EMC's slot retry may re-admit it later if
// capacity frees up.
func (pr *ProgramRun) revokeGrant() {
	if pr.dataDriven {
		pr.setDataDriven(false) // releases the grant
	} else {
		pr.releaseGrant()
	}
}

// tryEnterDataDriven switches data-driven on, gated on a grant. False
// means the arbiter denied admission and the mode is unchanged.
func (pr *ProgramRun) tryEnterDataDriven() bool {
	if pr.dataDriven {
		return true
	}
	if !pr.acquireGrant() {
		return false
	}
	pr.setDataDriven(true)
	return true
}

// finish runs the common end-of-program path: the grant (if any) goes back
// to the arbiter and the completion callback fires.
func (pr *ProgramRun) finish() {
	pr.releaseGrant()
	if pr.onDone != nil {
		pr.onDone()
	}
}

// setDataDriven flips the mode and logs the transition. Turning the mode
// off returns the program's grant.
func (pr *ProgramRun) setDataDriven(on bool) {
	if pr.dataDriven == on {
		return
	}
	pr.dataDriven = on
	if !on {
		pr.releaseGrant()
	}
	pr.ModeSwitches = append(pr.ModeSwitches, ModeSwitch{At: pr.r.cl.K.Now(), On: on})
	state := "off"
	if on {
		state = "on"
	}
	pr.obs().Instant("mode.switch", pr.ctrlTrack(), pr.r.cl.K.Now(),
		obs.I64("program", int64(pr.id)), obs.Str("data_driven", state))
}

// file returns (opening on demand) the program's handle for a file.
func (pr *ProgramRun) file(name string) *mpiio.File {
	f := pr.files[name]
	if f == nil {
		f = mpiio.Open(pr.world, pr.r.cl.FS, name, pr.mpiioC, pr.instr, pr.origins)
		f.SetTrack(fmt.Sprintf("prog%d", pr.id))
		f.SetErrSink(pr.fail)
		pr.files[name] = f
	}
	return f
}

// start spawns the setup proc and rank procs at startAt.
func (pr *ProgramRun) start() {
	k := pr.r.cl.K
	pr.dirtyUsed = make([]int64, pr.prog.Ranks())
	k.SpawnAt(pr.startAt, fmt.Sprintf("prog%d/setup", pr.id), func(p *sim.Proc) {
		// Pre-create input files (layout only; the paper's files exist
		// before the timed runs).
		cl := pr.r.cl.FS.Client(pr.nodes[0])
		for _, fs := range pr.prog.Files() {
			if fs.Precreate && fs.Size > 0 {
				cl.Create(p, fs.Name, fs.Size)
			}
		}
		pr.StartedAt = p.Now()
		for rank := 0; rank < pr.prog.Ranks(); rank++ {
			rank := rank
			k.Spawn(fmt.Sprintf("prog%d/rank%d", pr.id, rank), func(rp *sim.Proc) {
				pr.rankLoop(rp, rank)
			})
		}
		if pr.mode == ModeStrategy2 {
			pr.s2 = newStrategy2(pr)
			pr.s2.start()
		}
	})
}

// rankLoop drives one rank's generator to completion.
func (pr *ProgramRun) rankLoop(p *sim.Proc, rank int) {
	gen := pr.prog.NewRank(rank)
	env := workloads.TrueEnv{}
	for {
		// A crashed program's surviving ranks stop at the next op boundary
		// (their in-flight op completes, then the proc exits; ranks wedged
		// in a barrier stay parked, which is harmless).
		if pr.crashed {
			return
		}
		op := gen.Next(env)
		switch op.Kind {
		case workloads.OpDone:
			pr.rankDone(p, rank)
			return
		case workloads.OpCompute:
			p.Sleep(op.Dur)
		case workloads.OpBarrier:
			pr.world.Barrier(p, rank)
		case workloads.OpRead:
			pr.read(p, rank, gen, op)
		case workloads.OpWrite:
			pr.write(p, rank, gen, op)
		case workloads.OpSeal:
			pr.seal(p, rank, op)
		default:
			panic(fmt.Sprintf("core: unknown op kind %d", op.Kind))
		}
	}
}

func (pr *ProgramRun) rankDone(p *sim.Proc, rank int) {
	pr.doneRanks++
	if pr.ctrl != nil {
		pr.ctrl.maybeServe() // the alive count just shrank
	}
	if pr.doneRanks == pr.prog.Ranks() {
		// The last rank drains any data still dirty in the global cache
		// before the program counts as finished (its cost is part of the
		// program's write time).
		if pr.cache != nil {
			for pr.cache.DirtyBytes() > 0 {
				if pr.ctrl != nil && pr.ctrl.state != ctrlIdle {
					// A cycle is mid-flight; let it finish first.
					myGen := pr.ctrl.gen
					for pr.ctrl.gen == myGen {
						pr.ctrl.resume.Wait(p)
					}
					continue
				}
				pr.crmServe(p, nil, nil)
			}
		}
		pr.Done = true
		pr.EndedAt = p.Now()
		pr.finish()
	}
}

// read dispatches a read op according to the current mode.
func (pr *ProgramRun) read(p *sim.Proc, rank int, gen workloads.RankGen, op workloads.Op) {
	switch {
	case pr.dataDriven:
		pr.dataDrivenRead(p, rank, gen, op)
	case pr.mode == ModeCollective:
		pr.file(op.File).ReadExtentsAll(p, rank, op.Extents)
	case pr.mode == ModeStrategy2:
		pr.s2.read(p, rank, op)
	default:
		pr.file(op.File).ReadExtents(p, rank, op.Extents)
	}
}

// write dispatches a write op according to the current mode. Epoch-tagged
// checkpoint writes take the burst-buffer path whenever the cluster has a
// tier, regardless of mode: the log is the write path, and the seal that
// follows defines the epoch's durability.
func (pr *ProgramRun) write(p *sim.Proc, rank int, gen workloads.RankGen, op workloads.Op) {
	switch {
	case op.Epoch > 0 && pr.r.cl.Burst() != nil:
		pr.burstWrite(p, rank, op)
	case pr.dataDriven:
		pr.dataDrivenWrite(p, rank, op)
	case pr.mode == ModeCollective:
		pr.file(op.File).WriteExtentsAll(p, rank, op.Extents)
	default:
		pr.file(op.File).WriteExtents(p, rank, op.Extents)
	}
}

// burstWrite absorbs an epoch-tagged checkpoint write into the rank's
// node-local burst log; the tier drains it to the PFS in the background.
func (pr *ProgramRun) burstWrite(p *sim.Proc, rank int, op workloads.Op) {
	start := p.Now()
	node := pr.world.Node(rank)
	rc := pr.rankRequest(rank)
	pr.r.cl.Burst().Log(node).Append(p, rank, op.Epoch, op.File, op.Extents)
	pr.instr.Record(p.Now(), op.File, op.Extents)
	pr.instr.Span(rank, start, p.Now(), op.Bytes())
	if rc.Traced() {
		pr.obs().Span(rc.ID, obs.StageRequest, rc.Track, start, p.Now(),
			obs.Str("verb", "burst-write"), obs.I64("bytes", op.Bytes()),
			obs.I64("epoch", int64(op.Epoch)))
	}
}

// seal commits a checkpoint epoch for one rank. On the burst path it seals
// the rank's log records (making them crash-durable); on the direct path
// the preceding synchronous writes already reached the PFS, so the seal is
// pure bookkeeping. Either way the rank's sealed epoch advances, and the
// epoch every rank has sealed is the one a restart recovers.
func (pr *ProgramRun) seal(p *sim.Proc, rank int, op workloads.Op) {
	if tier := pr.r.cl.Burst(); tier != nil {
		tier.Log(pr.world.Node(rank)).Seal(p, rank, op.Epoch)
	}
	if pr.epochs == nil {
		pr.epochs = burst.NewEpochs(pr.prog.Ranks())
	}
	pr.epochs.Seal(rank, op.Epoch)
}

// clientCrash aborts the whole program at the fault window's start: ranks
// stop at their next op boundary, the node-local burst logs crash-stop
// (unsealed records will be lost), and the run counts as done-by-failure.
func (pr *ProgramRun) clientCrash(at time.Duration) {
	if pr.crashed || pr.Done {
		return
	}
	pr.crashed = true
	pr.Done = true
	pr.EndedAt = at
	pr.obs().Instant("client.crash", pr.ctrlTrack(), at, obs.I64("program", int64(pr.id)))
	if tier := pr.r.cl.Burst(); tier != nil {
		for _, n := range pr.nodes {
			tier.CrashNode(n, at)
		}
	}
	pr.finish()
}

// Crashed reports whether an injected client crash aborted the program.
func (pr *ProgramRun) Crashed() bool { return pr.crashed }

// CommittedEpoch returns the newest checkpoint epoch sealed by every rank
// (0 when no epoch committed — restart has nothing to recover).
func (pr *ProgramRun) CommittedEpoch() int {
	if pr.epochs == nil {
		return 0
	}
	return pr.epochs.Committed()
}

// dataDrivenRead serves a read from the global cache, suspending the rank
// and triggering a pre-execution cycle on a miss (paper §IV-C/D).
func (pr *ProgramRun) dataDrivenRead(p *sim.Proc, rank int, gen workloads.RankGen, op workloads.Op) {
	start := p.Now()
	node := pr.world.Node(rank)
	rc := pr.rankRequest(rank)
	endSpan := func(outcome string) {
		if rc.Traced() {
			pr.obs().Span(rc.ID, obs.StageRequest, rc.Track, start, p.Now(),
				obs.Str("verb", "dd-read"), obs.I64("bytes", op.Bytes()),
				obs.Str("outcome", outcome))
		}
	}
	const maxCycles = 8
	for attempt := 0; ; attempt++ {
		missing := pr.cache.GetTraced(p, node, rc, op.File, op.Extents...)
		if len(missing) == 0 {
			pr.consumedCycle += op.Bytes()
			pr.instr.Record(p.Now(), op.File, op.Extents)
			pr.instr.Span(rank, start, p.Now(), op.Bytes())
			endSpan("cache")
			return
		}
		if attempt >= maxCycles || !pr.dataDriven {
			// Safety valve (and mode reverted mid-wait): serve the rest
			// directly. ReadExtents accounts the bytes it fetches; the
			// cycle waits and the cache-served portion are charged here.
			// Close the dd-read span first: ReadExtents opens a request of
			// its own on the same track.
			pr.instr.Span(rank, start, p.Now(), op.Bytes()-ext.Total(missing))
			endSpan("fallback")
			pr.file(op.File).ReadExtents(p, rank, ext.Merge(missing))
			return
		}
		pr.ctrl.waitReadCycle(p, rank, gen, op, rc)
	}
}

// dataDrivenWrite buffers the write in the global cache; when the rank's
// quota fills, it joins a writeback cycle (paper §IV-D).
func (pr *ProgramRun) dataDrivenWrite(p *sim.Proc, rank int, op workloads.Op) {
	start := p.Now()
	node := pr.world.Node(rank)
	rc := pr.rankRequest(rank)
	pr.cache.PutDirtyTraced(p, node, rc, op.File, op.Extents)
	pr.dirtyUsed[rank] += op.Bytes()
	pr.instr.Record(p.Now(), op.File, op.Extents)
	if pr.dirtyUsed[rank] >= pr.r.cfg.CacheQuotaBytes {
		pr.ctrl.waitWriteback(p, rank, rc)
	}
	pr.instr.Span(rank, start, p.Now(), op.Bytes())
	if rc.Traced() {
		pr.obs().Span(rc.ID, obs.StageRequest, rc.Track, start, p.Now(),
			obs.Str("verb", "dd-write"), obs.I64("bytes", op.Bytes()))
	}
}

// rankRequest opens a fresh traced request on the rank's track, or the zero
// Ctx when tracing is off (no track string is built on the disabled path).
func (pr *ProgramRun) rankRequest(rank int) obs.Ctx {
	o := pr.obs()
	if !o.Enabled() {
		return obs.Ctx{}
	}
	return o.StartRequest(fmt.Sprintf("prog%d/rank%d", pr.id, rank))
}
