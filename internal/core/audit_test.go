package core

import (
	"testing"
	"time"

	"dualpar/internal/ext"
	"dualpar/internal/workloads"
)

// runAudited runs one program under full audit and fails the test on any
// violated oracle.
func runAudited(t *testing.T, prog workloads.Program, mode Mode) *Runner {
	t.Helper()
	cl := smallCluster(1)
	cfg := DefaultConfig()
	cfg.Audit = true
	r := NewRunner(cl, cfg)
	if r.Auditor() == nil {
		t.Fatalf("Audit on but no auditor")
	}
	r.Auditor().SetArtifactDir(t.TempDir())
	r.Add(prog, mode, AddOptions{RanksPerNode: 4})
	if !r.Run(time.Hour) {
		t.Fatalf("%s/%v did not finish under audit", prog.Name(), mode)
	}
	if err := r.AuditErr(); err != nil {
		t.Fatalf("audit violation: %v", err)
	}
	return r
}

func TestAuditedRunsPassEveryOracle(t *testing.T) {
	modes := []Mode{ModeVanilla, ModeCollective, ModeDualPar, ModeDataDriven, ModeStrategy2}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			runAudited(t, smallMPIIOTest(mode == ModeDualPar || mode == ModeDataDriven), mode)
		})
	}
}

func TestAuditedWriteRunConservesBytes(t *testing.T) {
	r := runAudited(t, smallMPIIOTest(true), ModeDataDriven)
	// The conservation probes passed (no violation); sanity-check the linked
	// ledgers are non-trivial — the run really moved bytes through them.
	cl := r.Cluster()
	var disk, store int64
	for i, st := range cl.Stores {
		disk += st.Dispatcher().AuditDispatchedBytes()
		store += cl.FS.AuditServedBytes(i)
	}
	if disk == 0 || store == 0 {
		t.Fatalf("audit ledgers empty: disk=%d store=%d", disk, store)
	}
}

// TestAuditCatchesDroppedWriteback demonstrates the coherence oracle firing:
// dirty cache data marked clean without a recorded durable write must raise
// a keyed pfs.coherence violation carrying a reproducer artifact.
func TestAuditCatchesDroppedWriteback(t *testing.T) {
	cl := smallCluster(1)
	cfg := DefaultConfig()
	cfg.Audit = true
	r := NewRunner(cl, cfg)
	r.Auditor().SetArtifactDir(t.TempDir())

	// Simulate the bug: the file system never saw the write.
	if err := cl.FS.VerifyDurable("lost.dat", []ext.Extent{{Off: 0, Len: 4096}}); err == nil {
		t.Fatalf("VerifyDurable passed for a file that was never written")
	} else {
		r.Auditor().Violatef("pfs.coherence", "%v", err)
	}
	err := r.AuditErr()
	if err == nil {
		t.Fatalf("AuditErr() = nil, want pfs.coherence violation")
	}
	vs := r.Auditor().Violations()
	if vs[0].Key != "pfs.coherence" || vs[0].Artifact == "" {
		t.Fatalf("violation = %+v, want keyed pfs.coherence with artifact", vs[0])
	}
}
