package core

import (
	"testing"
	"time"

	"dualpar/internal/cluster"
	"dualpar/internal/workloads"
)

// smallCluster builds a scaled-down testbed: 3 data servers.
func smallCluster(seed int64) *cluster.Cluster {
	cfg := cluster.DefaultConfig()
	cfg.DataServers = 3
	cfg.Seed = seed
	d := cfg.Disk
	d.Sectors = 1 << 25 // 16 GB per member
	cfg.Disk = d
	return cluster.New(cfg)
}

// smallMPIIOTest is a quick sequential workload.
func smallMPIIOTest(write bool) workloads.MPIIOTest {
	m := workloads.DefaultMPIIOTest()
	m.Procs = 8
	m.FileBytes = 8 << 20
	m.Write = write
	return m
}

func runOne(t *testing.T, prog workloads.Program, mode Mode) *ProgramRun {
	t.Helper()
	cl := smallCluster(1)
	r := NewRunner(cl, DefaultConfig())
	pr := r.Add(prog, mode, AddOptions{RanksPerNode: 4})
	if !r.Run(time.Hour) {
		t.Fatalf("%s/%v did not finish", prog.Name(), mode)
	}
	return pr
}

func TestVanillaRunCompletes(t *testing.T) {
	pr := runOne(t, smallMPIIOTest(false), ModeVanilla)
	if pr.Elapsed() <= 0 {
		t.Fatalf("elapsed = %v", pr.Elapsed())
	}
	if got := pr.Instr().TotalBytes(); got != 8<<20 {
		t.Fatalf("instr bytes = %d, want 8MB", got)
	}
}

func TestVanillaReadsComeFromServers(t *testing.T) {
	cl := smallCluster(1)
	r := NewRunner(cl, DefaultConfig())
	r.Add(smallMPIIOTest(false), ModeVanilla, AddOptions{RanksPerNode: 4})
	if !r.Run(time.Hour) {
		t.Fatalf("did not finish")
	}
	var served int64
	for _, st := range cl.Stores {
		served += st.BytesRead()
	}
	if served != 8<<20 {
		t.Fatalf("servers served %d, want 8MB", served)
	}
}

func TestCollectiveRunCompletes(t *testing.T) {
	n := workloads.DefaultNoncontig()
	n.Procs = 8
	n.FileBytes = 8 << 20
	n.ElmtCount = 512
	pr := runOne(t, n, ModeCollective)
	if pr.Elapsed() <= 0 {
		t.Fatalf("collective run did not complete")
	}
}

func TestDataDrivenReadCompletesAndBatches(t *testing.T) {
	cl := smallCluster(1)
	r := NewRunner(cl, DefaultConfig())
	pr := r.Add(smallMPIIOTest(false), ModeDataDriven, AddOptions{RanksPerNode: 4})
	if !r.Run(time.Hour) {
		t.Fatalf("data-driven run did not finish")
	}
	if pr.ctrl.Cycles() == 0 {
		t.Fatalf("no data-driven cycles ran")
	}
	if pr.cache.Hits() == 0 {
		t.Fatalf("no cache hits: prefetching is not serving reads")
	}
	// Every byte the program consumed must have been prefetched or read.
	var served int64
	for _, st := range cl.Stores {
		served += st.BytesRead()
	}
	if served < 8<<20 {
		t.Fatalf("servers served %d, want >= 8MB", served)
	}
}

func TestDataDrivenBeatsVanillaOnInterleavedSmallReads(t *testing.T) {
	// The headline claim at small scale: interleaved small synchronous
	// reads (demo, 4KB segments, pure I/O) run faster data-driven.
	prog := workloads.DefaultDemo()
	prog.Procs = 8
	prog.FileBytes = 16 << 20
	van := runOne(t, prog, ModeVanilla).Elapsed()
	dd := runOne(t, prog, ModeDataDriven).Elapsed()
	if dd >= van {
		t.Fatalf("data-driven %v not faster than vanilla %v", dd, van)
	}
}

func TestDataDrivenImprovesDiskSequentiality(t *testing.T) {
	// Total head travel for the same transferred volume must drop under
	// data-driven execution (the per-access average is dominated by the
	// one-time seek into the file region, so compare totals).
	seeks := func(mode Mode) int64 {
		cl := smallCluster(1)
		r := NewRunner(cl, DefaultConfig())
		prog := workloads.DefaultDemo()
		prog.Procs = 8
		prog.FileBytes = 32 << 20 // large enough that steady-state travel dominates the initial seek
		r.Add(prog, mode, AddOptions{RanksPerNode: 4})
		if !r.Run(time.Hour) {
			t.Fatalf("run did not finish")
		}
		return cl.ServerStats().SeekSectors
	}
	van := seeks(ModeVanilla)
	dd := seeks(ModeDataDriven)
	if dd*2 >= van {
		t.Fatalf("total seek sectors: data-driven %d not well below vanilla %d", dd, van)
	}
}

func TestDataDrivenWriteDrainsDirty(t *testing.T) {
	cl := smallCluster(1)
	r := NewRunner(cl, DefaultConfig())
	pr := r.Add(smallMPIIOTest(true), ModeDataDriven, AddOptions{RanksPerNode: 4})
	if !r.Run(time.Hour) {
		t.Fatalf("write run did not finish")
	}
	if pr.cache.DirtyBytes() != 0 {
		t.Fatalf("dirty bytes left: %d", pr.cache.DirtyBytes())
	}
	var written int64
	for _, st := range cl.Stores {
		written += st.BytesWritten()
	}
	if written < 8<<20 {
		t.Fatalf("servers wrote %d, want >= 8MB", written)
	}
}

func TestStrategy2HidesIOUnderComputation(t *testing.T) {
	// Low I/O intensity: strategy 2 should approach pure-compute time,
	// clearly beating vanilla.
	prog := workloads.DefaultDemo()
	prog.Procs = 8
	prog.FileBytes = 32 << 20 // enough calls to amortize the cold warmup
	prog.ComputePerCall = 40 * time.Millisecond
	van := runOne(t, prog, ModeVanilla).Elapsed()
	s2 := runOne(t, prog, ModeStrategy2).Elapsed()
	if s2 >= van {
		t.Fatalf("strategy2 %v not faster than vanilla %v at low I/O ratio", s2, van)
	}
	compute := time.Duration(prog.Calls()) * prog.ComputePerCall
	if s2 > compute*3/2 {
		t.Fatalf("strategy2 %v far above compute floor %v: I/O not hidden", s2, compute)
	}
}

func TestDataDrivenRetainsComputeSlowsLowIORatio(t *testing.T) {
	// Fig 1(a) left side: at low I/O ratios, strategy 3's redundant
	// computation makes it slower than strategy 2.
	prog := workloads.DefaultDemo()
	prog.Procs = 8
	prog.FileBytes = 8 << 20
	prog.ComputePerCall = 40 * time.Millisecond
	s2 := runOne(t, prog, ModeStrategy2).Elapsed()
	dd := runOne(t, prog, ModeDataDriven).Elapsed()
	if dd <= s2 {
		t.Fatalf("data-driven %v should lose to strategy2 %v at low I/O ratio", dd, s2)
	}
}

func TestMisPrefetchDetectedOnDependentReads(t *testing.T) {
	prog := workloads.DefaultDependentReader()
	prog.Procs = 4
	// Large file: coincidental coverage of the dependent chain by garbage
	// prefetches must be negligible, as in the paper's 2 GB setup.
	prog.FileBytes = 2 << 30
	prog.CallsPerRank = 16
	pr := runOne(t, prog, ModeDataDriven)
	if len(pr.MisSamples()) == 0 {
		t.Fatalf("no mis-prefetch samples recorded")
	}
	var sum float64
	for _, s := range pr.MisSamples() {
		sum += s
	}
	if avg := sum / float64(len(pr.MisSamples())); avg < 0.5 {
		t.Fatalf("mis-prefetch avg = %g, want high for fully dependent reads", avg)
	}
}

func TestEMCDisablesOnMisPrefetch(t *testing.T) {
	// Table III scenario: data-driven mode starts on (forced), everything
	// prefetched is wrong, and EMC turns the mode off for good — a
	// one-time overhead.
	prog := workloads.DefaultDependentReader()
	prog.Procs = 4
	prog.FileBytes = 2 << 30
	prog.CallsPerRank = 64
	cl := smallCluster(1)
	cfg := DefaultConfig()
	cfg.SlotEvery = 100 * time.Millisecond
	r := NewRunner(cl, cfg)
	pr := r.Add(prog, ModeDataDriven, AddOptions{RanksPerNode: 4})
	if !r.Run(time.Hour) {
		t.Fatalf("run did not finish")
	}
	if pr.dataDriven {
		t.Fatalf("data-driven still on at exit despite full mis-prefetch")
	}
	if !pr.disabled {
		t.Fatalf("EMC did not disable the mode")
	}
	// After the disable the program must stop cycling.
	if off := pr.ModeSwitches[len(pr.ModeSwitches)-1]; off.On {
		t.Fatalf("last mode switch was ON: %+v", pr.ModeSwitches)
	}
}

func TestEMCEnablesUnderInterference(t *testing.T) {
	// Two interfering sequential programs: EMC should detect interference
	// (long inter-file seeks vs tiny request distance) and enable
	// data-driven mode for at least one program.
	cl := smallCluster(1)
	cfg := DefaultConfig()
	cfg.SlotEvery = 250 * time.Millisecond
	r := NewRunner(cl, cfg)
	m1 := smallMPIIOTest(false)
	m1.FileName = "a.dat"
	m1.BarrierEvery = 0 // keep the scaled-down runs I/O-bound
	m2 := smallMPIIOTest(false)
	m2.FileName = "b.dat"
	m2.BarrierEvery = 0
	p1 := r.Add(m1, ModeDualPar, AddOptions{RanksPerNode: 4})
	p2 := r.Add(m2, ModeDualPar, AddOptions{RanksPerNode: 4, FirstNodeIndex: 2})
	if !r.Run(time.Hour) {
		t.Fatalf("runs did not finish")
	}
	switched := len(p1.ModeSwitches) > 0 || len(p2.ModeSwitches) > 0
	if !switched {
		t.Fatalf("EMC never enabled data-driven mode under interference; decisions: %+v", tail(r.emc.Decisions, 6))
	}
}

func tail(d []Decision, n int) []Decision {
	if len(d) <= n {
		return d
	}
	return d[len(d)-n:]
}

func TestTwoProgramsConcurrentDataDrivenFasterThanVanilla(t *testing.T) {
	run := func(mode Mode) time.Duration {
		cl := smallCluster(1)
		r := NewRunner(cl, DefaultConfig())
		m1 := smallMPIIOTest(false)
		m1.FileName = "a.dat"
		m2 := smallMPIIOTest(false)
		m2.FileName = "b.dat"
		p1 := r.Add(m1, mode, AddOptions{RanksPerNode: 4})
		p2 := r.Add(m2, mode, AddOptions{RanksPerNode: 4, FirstNodeIndex: 2})
		if !r.Run(time.Hour) {
			t.Fatalf("concurrent run (%v) did not finish", mode)
		}
		e1, e2 := p1.Elapsed(), p2.Elapsed()
		if e2 > e1 {
			return e2
		}
		return e1
	}
	van := run(ModeVanilla)
	dd := run(ModeDataDriven)
	if dd >= van {
		t.Fatalf("concurrent data-driven %v not faster than vanilla %v", dd, van)
	}
}

func TestDeterministicRuns(t *testing.T) {
	elapsed := func() time.Duration {
		cl := smallCluster(7)
		r := NewRunner(cl, DefaultConfig())
		pr := r.Add(smallMPIIOTest(false), ModeDataDriven, AddOptions{RanksPerNode: 4})
		if !r.Run(time.Hour) {
			t.Fatalf("run did not finish")
		}
		return pr.Elapsed()
	}
	a, b := elapsed(), elapsed()
	if a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestS3asimDataDrivenCompletes(t *testing.T) {
	s := workloads.DefaultS3asim()
	s.Procs = 8
	s.Queries = 8
	s.FragmentBytes = 1 << 20
	pr := runOne(t, s, ModeDataDriven)
	if pr.Elapsed() <= 0 {
		t.Fatalf("s3asim did not complete")
	}
	if pr.cache.DirtyBytes() != 0 {
		t.Fatalf("dirty result data left unwritten")
	}
}

func TestBTIODataDrivenCompletes(t *testing.T) {
	b := workloads.DefaultBTIO()
	b.Procs = 16
	b.TotalBytes = 2 << 20
	b.Steps = 2
	pr := runOne(t, b, ModeDataDriven)
	if pr.Elapsed() <= 0 {
		t.Fatalf("btio did not complete")
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeVanilla: "vanilla", ModeCollective: "collective",
		ModeStrategy2: "strategy2", ModeDualPar: "dualpar", ModeDataDriven: "data-driven",
	} {
		if m.String() != want {
			t.Fatalf("%d.String() = %q", m, m.String())
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.CacheQuotaBytes = -1 },
		func(c *Config) { c.TImprovement = 0 },
		func(c *Config) { c.IORatioThreshold = 0 },
		func(c *Config) { c.MisPrefetchThreshold = 2 },
		func(c *Config) { c.HoleBytes = -1 },
		func(c *Config) { c.SlotEvery = 0 },
		func(c *Config) { c.MaxFillWait = c.MinFillWait - 1 },
		func(c *Config) { c.Strategy2WindowBytes = 0 },
	}
	for i, m := range bad {
		c := DefaultConfig()
		m(&c)
		if c.Validate() == nil {
			t.Fatalf("case %d passed", i)
		}
	}
	if DefaultConfig().Validate() != nil {
		t.Fatalf("default config invalid")
	}
}

func TestParseModeRoundTrip(t *testing.T) {
	for _, m := range []Mode{ModeVanilla, ModeCollective, ModeStrategy2, ModeDualPar, ModeDataDriven} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatalf("bogus mode parsed")
	}
}

func TestCheckpointDataDrivenBeatsVanilla(t *testing.T) {
	c := workloads.DefaultCheckpoint()
	c.Procs = 16
	c.Checkpoints = 8
	c.Compute = 10 * time.Millisecond
	van := runOne(t, c, ModeVanilla).Elapsed()
	dd := runOne(t, c, ModeDataDriven).Elapsed()
	if dd >= van {
		t.Fatalf("data-driven %v not faster than vanilla %v on N-1 checkpointing", dd, van)
	}
}
