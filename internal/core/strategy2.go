package core

import (
	"fmt"
	"time"

	"dualpar/internal/ext"
	"dualpar/internal/obs"
	"dualpar/internal/sim"
	"dualpar/internal/workloads"
)

// strategy2 implements the paper's Strategy 2 baseline (§II):
// application-level prefetching by pre-execution with the computation
// stripped out, issuing each prefetch request to the data servers
// immediately after it is generated, aiming to hide I/O behind computation.
// Requests reach the servers in per-process order with gaps — exactly the
// stream the disk scheduler struggles to sort (Fig 1c).
type strategy2 struct {
	pr       *ProgramRun
	issued   []int64 // per rank
	consumed []int64 // per rank
	moved    *sim.Signal
}

func newStrategy2(pr *ProgramRun) *strategy2 {
	n := pr.prog.Ranks()
	return &strategy2{
		pr:       pr,
		issued:   make([]int64, n),
		consumed: make([]int64, n),
		moved:    pr.r.cl.K.NewSignal(),
	}
}

// start launches one prefetcher per rank.
func (s *strategy2) start() {
	k := s.pr.r.cl.K
	for rank := 0; rank < s.pr.prog.Ranks(); rank++ {
		rank := rank
		k.Spawn(fmt.Sprintf("prog%d/s2-prefetch%d", s.pr.id, rank), func(p *sim.Proc) {
			s.prefetchLoop(p, rank)
		})
	}
}

// prefetchLoop replays the rank's generator, skipping computation,
// synchronization, and writes, and issuing each read immediately. It stays
// at most its share of WindowBytes ahead of the rank's own consumption.
func (s *strategy2) prefetchLoop(p *sim.Proc, rank int) {
	gen := s.pr.prog.NewRank(rank)
	env := workloads.TrueEnv{}
	node := s.pr.world.Node(rank)
	cl := s.pr.r.cl.FS.Client(node)
	// A request larger than the window still goes out (the check precedes
	// the increment), so even a tiny window cannot deadlock the prefetcher.
	window := s.pr.r.cfg.Strategy2WindowBytes / int64(s.pr.prog.Ranks())
	for {
		op := gen.Next(env)
		switch op.Kind {
		case workloads.OpDone:
			return
		case workloads.OpRead:
			// Each prefetch request goes out individually and
			// *non-blockingly*, immediately after it is generated (§II,
			// following the pre-execution prefetching of refs [5,7]):
			// Strategy 2 makes no attempt to batch or reorder, which is why
			// its request stream is no better sorted than the
			// computation-driven one (Fig 1c). The window caps how far
			// issuance runs ahead of consumption.
			for _, e := range op.Extents {
				for s.issued[rank]-s.consumed[rank] > window {
					s.moved.Wait(p)
				}
				e := e
				file := op.File
				s.issued[rank] += e.Len
				s.pr.r.cl.K.Spawn(fmt.Sprintf("prog%d/s2-req%d", s.pr.id, rank), func(rp *sim.Proc) {
					one := []ext.Extent{e}
					rc := s.pr.obs().StartRequest(fmt.Sprintf("prog%d/s2/rank%d", s.pr.id, rank))
					start := rp.Now()
					endSpan := func() {
						if rc.Traced() {
							s.pr.obs().Span(rc.ID, obs.StageRequest, rc.Track, start, rp.Now(),
								obs.Str("verb", "s2-prefetch"), obs.I64("bytes", e.Len))
						}
					}
					err := cl.Read(rp, file, one, s.pr.origins[rank], rc)
					if err != nil {
						// A failed prefetch must not seed the cache; the
						// consumer's own read will surface the error.
						endSpan()
						s.pr.fail(err)
						return
					}
					// The cache insertion belongs to the prefetch request, so
					// the span closes after it (its StageCache child must nest).
					s.pr.cache.PutCleanTraced(rp, node, rc, file, one)
					endSpan()
				})
				// Issuing itself is not free: the pre-execution thread
				// spends a moment per request.
				p.Sleep(20 * time.Microsecond)
			}
		case workloads.OpCompute, workloads.OpWrite, workloads.OpBarrier:
			// Computation is excluded from the pre-execution (§II cites
			// [5]); writes and synchronization produce no prefetches.
		}
	}
}

// noteConsumed advances a rank's consumption watermark.
func (s *strategy2) noteConsumed(rank int, bytes int64) {
	s.consumed[rank] += bytes
	s.moved.Broadcast()
}

// read serves a main-process read: cache hits are free of server traffic;
// misses fall through to vanilla synchronous requests.
func (s *strategy2) read(p *sim.Proc, rank int, op workloads.Op) {
	start := p.Now()
	node := s.pr.world.Node(rank)
	rc := s.pr.rankRequest(rank)
	endSpan := func(outcome string) {
		if rc.Traced() {
			s.pr.obs().Span(rc.ID, obs.StageRequest, rc.Track, start, p.Now(),
				obs.Str("verb", "s2-read"), obs.I64("bytes", op.Bytes()),
				obs.Str("outcome", outcome))
		}
	}
	missing := s.pr.cache.GetTraced(p, node, rc, op.File, op.Extents...)
	s.noteConsumed(rank, op.Bytes())
	if len(missing) == 0 {
		s.pr.instr.Record(p.Now(), op.File, op.Extents)
		s.pr.instr.Span(rank, start, p.Now(), op.Bytes())
		endSpan("cache")
		return
	}
	// The cache-served portion is accounted here; ReadExtents accounts the
	// bytes it fetches itself. The s2-read span closes before ReadExtents
	// opens its own request on the same track.
	s.pr.instr.Span(rank, start, p.Now(), op.Bytes()-ext.Total(missing))
	endSpan("fallback")
	s.pr.file(op.File).ReadExtents(p, rank, ext.Merge(missing))
}
