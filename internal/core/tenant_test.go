package core

import (
	"testing"
	"time"

	"dualpar/internal/check"
	"dualpar/internal/cluster"
	"dualpar/internal/sim"
	"dualpar/internal/tenant"
	"dualpar/internal/workloads"
)

// tenantCluster is smallCluster with a tenancy config attached.
func tenantCluster(seed int64, tc tenant.Config) *cluster.Cluster {
	cfg := cluster.DefaultConfig()
	cfg.DataServers = 3
	cfg.Seed = seed
	d := cfg.Disk
	d.Sectors = 1 << 25
	cfg.Disk = d
	cfg.Tenancy = &tc
	return cluster.New(cfg)
}

func tinyDemo(name string) workloads.Demo {
	d := workloads.DefaultDemo()
	d.Procs = 1
	d.FileBytes = 256 << 10
	d.SegsPerCall = 4
	d.FileName = name
	return d
}

// TestGrantBoundHoldsAcrossJobs pins the arbiter wiring end to end: with
// MaxGrants=1, two pinned data-driven jobs cannot both hold a grant; the
// denied one runs conventionally until the first finishes and the EMC's
// slot retry picks the grant up, and every grant is back at exit.
func TestGrantBoundHoldsAcrossJobs(t *testing.T) {
	tc := tenant.DefaultConfig()
	tc.Tenants = 2
	tc.MaxGrants = 1
	cl := tenantCluster(1, tc)
	aud := check.New(1, "tenancy")
	aud.SetArtifactDir(t.TempDir())
	cl.EnableAudit(aud)
	ccfg := DefaultConfig()
	ccfg.Audit = true
	ccfg.SlotEvery = 2 * time.Millisecond // several retry slots per job
	r := NewRunner(cl, ccfg)
	long := tinyDemo("a.dat")
	long.FileBytes = 2 << 20
	a := r.Add(long, ModeDataDriven, AddOptions{RanksPerNode: 4, Tenant: 0})
	long.FileName = "b.dat"
	b := r.Add(long, ModeDataDriven, AddOptions{RanksPerNode: 4, Tenant: 1})
	arb := cl.Arbiter()
	if got := arb.Held(); got != 1 {
		t.Fatalf("grants held after Add = %d, want 1 (bound)", got)
	}
	if a.DataDriven() == b.DataDriven() {
		t.Fatalf("both programs agree on data-driven=%v under a 1-grant bound", a.DataDriven())
	}
	if !r.Run(time.Hour) {
		t.Fatal("run did not finish")
	}
	if err := aud.Err(); err != nil {
		t.Fatalf("audit: %v", err)
	}
	if got := arb.Held(); got != 0 {
		t.Fatalf("grants held at exit = %d, want 0", got)
	}
	if arb.Denies(0)+arb.Denies(1) == 0 {
		t.Fatal("no denial recorded despite contention for one grant")
	}
	// The denied program got the grant on an EMC retry once the first
	// finished (both jobs are tiny; the winner releases quickly).
	if arb.Grants(0)+arb.Grants(1) < 2 {
		t.Fatalf("grants issued = %d, want both programs eventually admitted",
			arb.Grants(0)+arb.Grants(1))
	}
}

// TestSingleTenantDefaultsPassThrough pins the seed-compat contract at the
// core level: Tenants=1 with default policy (unbounded grants, no cache
// partition) admits everything immediately and leaks nothing.
func TestSingleTenantDefaultsPassThrough(t *testing.T) {
	cl := tenantCluster(1, tenant.DefaultConfig())
	r := NewRunner(cl, DefaultConfig())
	pr := r.Add(tinyDemo("a.dat"), ModeDataDriven, AddOptions{RanksPerNode: 4})
	if !pr.DataDriven() {
		t.Fatal("default single-tenant arbiter denied a grant")
	}
	if !r.Run(time.Hour) {
		t.Fatal("run did not finish")
	}
	if got := cl.Arbiter().Held(); got != 0 {
		t.Fatalf("grants held at exit = %d", got)
	}
}

// TestMidRunAddAndOnDone pins the dynamic-submission path closed loops
// depend on: a driver proc adds a program while the simulation runs, the
// EMC picks it up (its state arrays grow, the slot chain re-arms), and
// OnDone fires exactly once at completion.
func TestMidRunAddAndOnDone(t *testing.T) {
	cl := tenantCluster(1, tenant.DefaultConfig())
	r := NewRunner(cl, DefaultConfig())
	r.Add(tinyDemo("first.dat"), ModeVanilla, AddOptions{RanksPerNode: 4})
	doneAt := make(map[string]time.Duration)
	cl.K.SpawnAt(5*time.Millisecond, "driver", func(p *sim.Proc) {
		sig := cl.K.NewSignal()
		r.Add(tinyDemo("late.dat"), ModeDataDriven, AddOptions{
			RanksPerNode: 4,
			StartAt:      p.Now(),
			OnDone: func() {
				doneAt["late"] = cl.K.Now()
				sig.Broadcast()
			},
		})
		sig.Wait(p)
		// A second generation proves the chain re-arms after quiescence.
		r.Add(tinyDemo("later.dat"), ModeVanilla, AddOptions{
			RanksPerNode: 4,
			StartAt:      p.Now(),
			OnDone:       func() { doneAt["later"] = cl.K.Now() },
		})
	})
	if !r.Run(time.Hour) {
		t.Fatal("run did not finish")
	}
	if len(r.Programs()) != 3 {
		t.Fatalf("programs = %d, want 3", len(r.Programs()))
	}
	if doneAt["late"] == 0 || doneAt["later"] == 0 {
		t.Fatalf("OnDone callbacks missing: %v", doneAt)
	}
	if doneAt["later"] <= doneAt["late"] {
		t.Fatalf("completion order wrong: %v", doneAt)
	}
	for _, pr := range r.Programs() {
		if !pr.Done {
			t.Fatalf("program %s not done", pr.Prog().Name())
		}
	}
}
