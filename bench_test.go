// The benchmarks below regenerate every table and figure of the paper as Go
// benchmarks: one testing.B benchmark per experiment (quick-sized
// workloads), plus the design-choice ablations DESIGN.md calls out.
//
// The interesting output is the custom metrics: simulated seconds, MB/s,
// and speedups, reported per benchmark via b.ReportMetric. Run with
//
//	go test -bench=. -benchmem
package dualpar

import (
	"strconv"
	"testing"
	"time"

	"dualpar/internal/cluster"
	"dualpar/internal/core"
	"dualpar/internal/harness"
	"dualpar/internal/workloads"
)

func opts() harness.Opts { return harness.Opts{Quick: true} }

// reportFirstRow publishes a result's first data row as benchmark metrics.
func reportCell(b *testing.B, res *harness.Result, row, col int, unit string) {
	b.Helper()
	if row >= len(res.Table.Rows) || col >= len(res.Table.Rows[row]) {
		b.Fatalf("%s: missing cell (%d,%d)", res.ID, row, col)
	}
	v, err := strconv.ParseFloat(res.Table.Rows[row][col], 64)
	if err != nil {
		return // non-numeric cell (labels)
	}
	b.ReportMetric(v, unit)
}

func BenchmarkFig1a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.Fig1a(opts())
		// At 100% I/O ratio: strategy1 vs strategy3 execution time.
		last := len(res.Table.Rows) - 1
		reportCell(b, res, last, 1, "s1_sim_s")
		reportCell(b, res, last, 3, "s3_sim_s")
	}
}

func BenchmarkFig1b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.Fig1b(opts())
		reportCell(b, res, 0, 1, "s1_4k_sim_s")
		reportCell(b, res, 0, 3, "s3_4k_sim_s")
	}
}

func BenchmarkFig1cd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.Fig1cd(opts())
		reportCell(b, res, 0, 2, "s2_monotonicity")
		reportCell(b, res, 1, 2, "s3_monotonicity")
	}
}

func BenchmarkFig3Read(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.Fig3(opts())
		reportCell(b, res, 0, 2, "mpiio_vanilla_MBs")
		reportCell(b, res, 0, 4, "mpiio_dualpar_MBs")
		reportCell(b, res, 1, 4, "noncontig_dualpar_MBs")
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.Fig4(opts())
		reportCell(b, res, 0, 2, "p16_vanilla_MBs")
		reportCell(b, res, 0, 4, "p16_dualpar_MBs")
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.Fig5(opts())
		reportCell(b, res, 0, 1, "vanilla_io_s")
		reportCell(b, res, 0, 3, "dualpar_io_s")
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.Table2(opts())
		reportCell(b, res, 0, 1, "read_vanilla_MBs")
		reportCell(b, res, 0, 3, "read_dualpar_MBs")
		reportCell(b, res, 1, 3, "write_dualpar_MBs")
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.Fig6(opts())
		reportCell(b, res, 0, 3, "vanilla_seek_sect")
		reportCell(b, res, 1, 3, "dualpar_seek_sect")
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Fig 7 needs full size for the EMC slot cadence to be meaningful.
		res := harness.Fig7(harness.Opts{})
		reportCell(b, res, 0, 2, "vanilla_after_MBs")
		reportCell(b, res, 1, 2, "dualpar_after_MBs")
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.Fig8(opts())
		reportCell(b, res, 0, 1, "cache0_MBs")
		reportCell(b, res, 1, 1, "cache64k_MBs")
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.Table3(opts())
		reportCell(b, res, 0, 3, "overhead_pct_1mb")
	}
}

// Ablation benchmarks: the design choices DESIGN.md calls out.

func BenchmarkAblateScheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.AblateScheduler(opts())
		reportCell(b, res, 0, 2, "cfq_dualpar_MBs")
		reportCell(b, res, 2, 2, "noop_dualpar_MBs")
	}
}

func BenchmarkAblateTImprovement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.AblateTImprovement(opts())
		reportCell(b, res, 2, 2, "t8_finish_s")
	}
}

func BenchmarkAblateHoleThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.AblateHoleThreshold(opts())
		reportCell(b, res, 0, 2, "hole0_accesses")
		reportCell(b, res, 2, 2, "hole64k_accesses")
	}
}

func BenchmarkAblateChunkSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.AblateChunkSize(opts())
		reportCell(b, res, 1, 1, "chunk64k_MBs")
	}
}

func BenchmarkAblateDiskOrigins(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.AblateDiskOrigins(opts())
		reportCell(b, res, 0, 1, "server_origin_MBs")
		reportCell(b, res, 1, 1, "client_origin_MBs")
	}
}

func BenchmarkAblateCollectiveBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.AblateCollectiveBuffer(opts())
		reportCell(b, res, 1, 1, "cb4m_MBs")
	}
}

// Micro-benchmarks of the substrate itself: the real (wall-clock) cost of
// simulating the stack, which bounds what experiments are tractable.

func BenchmarkSimVanillaRun(b *testing.B) {
	m := workloads.DefaultMPIIOTest()
	m.FileBytes = 8 << 20
	for i := 0; i < b.N; i++ {
		runOnce(b, m, core.ModeVanilla)
	}
}

func BenchmarkSimDataDrivenRun(b *testing.B) {
	m := workloads.DefaultMPIIOTest()
	m.FileBytes = 8 << 20
	for i := 0; i < b.N; i++ {
		runOnce(b, m, core.ModeDataDriven)
	}
}

func runOnce(b *testing.B, prog workloads.Program, mode core.Mode) {
	b.Helper()
	cl := cluster.New(cluster.DefaultConfig())
	r := core.NewRunner(cl, core.DefaultConfig())
	pr := r.Add(prog, mode, core.AddOptions{RanksPerNode: 8})
	if !r.Run(time.Hour) {
		b.Fatalf("did not finish")
	}
	b.ReportMetric(pr.Elapsed().Seconds(), "sim_s")
}

func BenchmarkAblateServers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.AblateServers(opts())
		reportCell(b, res, 2, 2, "servers9_dualpar_MBs")
	}
}

func BenchmarkAblatePipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.AblatePipeline(opts())
		reportCell(b, res, 2, 1, "paper_cycle_s")
		reportCell(b, res, 4, 1, "pipelined_x4_s")
	}
}
