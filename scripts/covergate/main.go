// Command covergate guards the repo's test-coverage baseline. It parses a
// `go test -coverprofile` profile, aggregates statement coverage per
// package and in total, and fails when a named package drops below its
// floor or the total drops more than the allowed slack below the recorded
// baseline.
//
// Record the baseline (after a coverage-relevant change; -short, matching
// the CI coverage job — the golden sweeps the long tests re-run add wall
// clock but no meaningfully different coverage):
//
//	go test -short -coverprofile=cover.out ./...
//	go run ./scripts/covergate -write COVERAGE_baseline.json cover.out
//
// Gate a run against it (CI's blocking coverage job):
//
//	go run ./scripts/covergate -baseline COVERAGE_baseline.json \
//	    -floor dualpar/internal/tenant=85 cover.out
//
// -floor PKG=PCT is repeatable; each names an import-path prefix and a hard
// minimum statement-coverage percentage (blocking; a floor naming a package
// absent from the profile is an error, so a typo cannot silently pass).
// -slack PTS (default 2) is how far the total may drop below the baseline
// before the gate fails; with an empty -baseline the total check is
// skipped, so floors alone can gate a partial run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the persisted file format.
type Baseline struct {
	Note     string             `json:"note,omitempty"`
	TotalPct float64            `json:"total_pct"`
	Packages map[string]float64 `json:"packages"`
}

// floors collects repeated -floor PKG=PCT flags.
type floors map[string]float64

func (f floors) String() string { return fmt.Sprintf("%v", map[string]float64(f)) }

func (f floors) Set(v string) error {
	pkg, pct, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want PKG=PCT, got %q", v)
	}
	p, err := strconv.ParseFloat(pct, 64)
	if err != nil || p < 0 || p > 100 {
		return fmt.Errorf("bad floor percentage %q", pct)
	}
	f[pkg] = p
	return nil
}

// pkgCov accumulates statement counts for one package.
type pkgCov struct{ covered, total int64 }

func (c pkgCov) pct() float64 {
	if c.total == 0 {
		return 0
	}
	return 100 * float64(c.covered) / float64(c.total)
}

func main() {
	write := flag.String("write", "", "record the baseline to this JSON file instead of comparing")
	baseline := flag.String("baseline", "", "baseline JSON to compare the total against (empty = floors only)")
	slack := flag.Float64("slack", 2, "allowed total-coverage drop vs the baseline, in percentage points")
	fl := floors{}
	flag.Var(fl, "floor", "hard per-package floor as PKG=PCT (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: covergate [-write FILE | -baseline FILE] [-floor PKG=PCT]... cover.out")
		os.Exit(2)
	}
	pkgs, err := parseProfile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var tot pkgCov
	for _, c := range pkgs {
		tot.covered += c.covered
		tot.total += c.total
	}
	names := make([]string, 0, len(pkgs))
	for p := range pkgs {
		names = append(names, p)
	}
	sort.Strings(names)

	if *write != "" {
		b := Baseline{
			Note:     "statement coverage (-short, matching CI); regenerate: go test -short -coverprofile=cover.out ./... && go run ./scripts/covergate -write " + *write + " cover.out",
			TotalPct: tot.pct(),
			Packages: map[string]float64{},
		}
		for _, p := range names {
			b.Packages[p] = pkgs[p].pct()
		}
		f, err := os.Create(*write)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(b); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d packages, total %.1f%% -> %s\n", len(pkgs), tot.pct(), *write)
		return
	}

	failed := false
	for pkg, floor := range fl {
		var c pkgCov
		found := false
		for p, pc := range pkgs {
			if p == pkg || strings.HasPrefix(p, pkg+"/") {
				c.covered += pc.covered
				c.total += pc.total
				found = true
			}
		}
		if !found {
			fmt.Printf("FAIL  %s: not present in profile\n", pkg)
			failed = true
			continue
		}
		status := "ok  "
		if c.pct() < floor {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s  %s: %.1f%% (floor %.1f%%)\n", status, pkg, c.pct(), floor)
	}
	fmt.Printf("total: %.1f%%\n", tot.pct())
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var b Baseline
		if err := json.Unmarshal(data, &b); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if tot.pct() < b.TotalPct-*slack {
			fmt.Printf("FAIL  total %.1f%% dropped more than %.1f pts below baseline %.1f%%\n",
				tot.pct(), *slack, b.TotalPct)
			failed = true
		} else {
			fmt.Printf("ok    total within %.1f pts of baseline %.1f%%\n", *slack, b.TotalPct)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// parseProfile aggregates a cover profile into per-package statement
// counts. Profile lines are "file.go:sl.sc,el.ec numStmts hitCount"; a
// statement block counts as covered when any recorded line hit it (merged
// profiles repeat blocks).
func parseProfile(path_ string) (map[string]pkgCov, error) {
	f, err := os.Open(path_)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	type block struct {
		pkg   string
		stmts int64
	}
	blocks := map[string]*block{} // keyed by file:range
	hit := map[string]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "mode:") || line == "" {
			continue
		}
		pos, rest, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("%s: bad profile line %q", path_, line)
		}
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s: bad profile line %q", path_, line)
		}
		stmts, err1 := strconv.ParseInt(fields[0], 10, 64)
		count, err2 := strconv.ParseInt(fields[1], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%s: bad profile line %q", path_, line)
		}
		file, _, _ := strings.Cut(pos, ":")
		if b := blocks[pos]; b == nil {
			blocks[pos] = &block{pkg: path.Dir(file), stmts: stmts}
		}
		if count > 0 {
			hit[pos] = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	pkgs := map[string]pkgCov{}
	for pos, b := range blocks {
		c := pkgs[b.pkg]
		c.total += b.stmts
		if hit[pos] {
			c.covered += b.stmts
		}
		pkgs[b.pkg] = c
	}
	return pkgs, nil
}
