// Command benchdiff guards the repo's performance baseline. It parses `go
// test -bench` text output, strips the -GOMAXPROCS suffix from benchmark
// names, and either records a JSON baseline or compares a fresh run against
// one, failing when any benchmark regressed beyond the threshold.
//
// Record the baseline (after a performance-relevant change, on an idle
// machine):
//
//	go test -run '^$' -bench . -benchmem ./... > bench.txt
//	go run ./scripts/benchdiff -write BENCH_baseline.json bench.txt
//
// Compare a run against it (CI's non-blocking delta job):
//
//	go run ./scripts/benchdiff -baseline BENCH_baseline.json bench.txt
//
// -zero REGEXP additionally asserts every matched benchmark reports exactly
// 0 allocs/op (blocking; no match is an error). With an empty -baseline the
// comparison is skipped, so -zero can gate allocation-free hot paths on a
// partial run without a baseline file:
//
//	go run ./scripts/benchdiff -baseline '' -zero 'BenchmarkKernel' bench.txt
//
// -match REGEXP restricts the baseline comparison to matching benchmark
// names (both sides), so a blocking CI step can gate just the deterministic
// kernel microbenchmarks while the full noisy suite stays advisory:
//
//	go run ./scripts/benchdiff -match '^BenchmarkKernel' -baseline BENCH_baseline.json bench.txt
//
// ns/op is compared within ±threshold (default 10%); allocs/op likewise but
// a difference of at most one allocation is always tolerated (tiny counts
// jitter with testing.B accounting). Benchmarks present in only one of the
// two sets are reported but do not fail the comparison, so partial runs
// (CI smoke) can still be diffed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's recorded performance.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
}

// Baseline is the persisted file format.
type Baseline struct {
	Note       string           `json:"note,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkKernelEvents-8   100000   29.34 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parse extracts entries from `go test -bench` output.
func parse(r io.Reader) (map[string]Entry, error) {
	out := make(map[string]Entry)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		e := out[m[1]]
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			}
		}
		out[m[1]] = e
	}
	return out, sc.Err()
}

func sortedNames(m map[string]Entry) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// exceeds reports whether got regressed or improved past frac relative to
// want (want == 0 tolerates only got == 0).
func exceeds(got, want, frac float64) bool {
	if want == 0 {
		return got != 0
	}
	return math.Abs(got-want)/want > frac
}

func main() {
	write := flag.String("write", "", "record the run as a new baseline at this path instead of comparing")
	baseline := flag.String("baseline", "BENCH_baseline.json", "baseline file to compare against")
	threshold := flag.Float64("threshold", 0.10, "allowed fractional drift per metric")
	note := flag.String("note", "", "note stored in the baseline (with -write)")
	zero := flag.String("zero", "", "regexp of benchmarks that must report 0 allocs/op (blocking)")
	match := flag.String("match", "", "regexp restricting the baseline comparison to matching benchmarks")
	flag.Parse()

	var matchRe *regexp.Regexp
	if *match != "" {
		re, err := regexp.Compile(*match)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: -match: %v\n", err)
			os.Exit(2)
		}
		matchRe = re
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	got, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(got) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines in input")
		os.Exit(2)
	}

	if *write != "" {
		b := Baseline{Note: *note, Benchmarks: got}
		buf, _ := json.MarshalIndent(b, "", "  ")
		if err := os.WriteFile(*write, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(got), *write)
		return
	}

	zeroFailed := 0
	if *zero != "" {
		re, err := regexp.Compile(*zero)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: -zero: %v\n", err)
			os.Exit(2)
		}
		matched := 0
		for _, name := range sortedNames(got) {
			if !re.MatchString(name) {
				continue
			}
			matched++
			if g := got[name]; g.AllocsPerOp != 0 {
				fmt.Printf("ALLOC    %-45s %.0f allocs/op, want 0\n", name, g.AllocsPerOp)
				zeroFailed++
			}
		}
		if matched == 0 {
			fmt.Fprintf(os.Stderr, "benchdiff: -zero %q matched no benchmarks\n", *zero)
			os.Exit(2)
		}
		fmt.Printf("benchdiff: %d zero-alloc benchmarks checked, %d violations\n", matched, zeroFailed)
	}
	if *baseline == "" {
		if zeroFailed > 0 {
			os.Exit(1)
		}
		return
	}

	buf, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(buf, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", *baseline, err)
		os.Exit(2)
	}

	failed := 0
	compared := 0
	for _, name := range sortedNames(got) {
		if matchRe != nil && !matchRe.MatchString(name) {
			continue
		}
		g := got[name]
		b, ok := base.Benchmarks[name]
		if !ok {
			fmt.Printf("NEW      %-45s %12.1f ns/op %8.0f allocs/op\n", name, g.NsPerOp, g.AllocsPerOp)
			continue
		}
		compared++
		bad := exceeds(g.NsPerOp, b.NsPerOp, *threshold)
		// Alloc counts are near-deterministic; still tolerate ±1 for
		// testing.B bookkeeping noise at tiny counts.
		if exceeds(g.AllocsPerOp, b.AllocsPerOp, *threshold) && math.Abs(g.AllocsPerOp-b.AllocsPerOp) > 1 {
			bad = true
		}
		status := "ok"
		if bad {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%-8s %-45s %12.1f -> %12.1f ns/op (%+.1f%%)  %.0f -> %.0f allocs/op\n",
			status, name, b.NsPerOp, g.NsPerOp, pct(g.NsPerOp, b.NsPerOp), b.AllocsPerOp, g.AllocsPerOp)
	}
	for _, name := range sortedNames(base.Benchmarks) {
		if matchRe != nil && !matchRe.MatchString(name) {
			continue
		}
		if _, ok := got[name]; !ok {
			fmt.Printf("MISSING  %-45s (in baseline, not in this run)\n", name)
		}
	}
	if matchRe != nil && compared == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: -match %q compared no benchmarks against the baseline\n", *match)
		os.Exit(2)
	}
	fmt.Printf("benchdiff: %d compared, %d beyond ±%.0f%%\n", compared, failed, *threshold*100)
	if failed > 0 || zeroFailed > 0 {
		os.Exit(1)
	}
}

func pct(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	return (got - want) / want * 100
}
