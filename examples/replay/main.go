// Replay: evaluate a recorded application I/O trace under every execution
// scheme. The trace format is CSV, one record per line:
//
//	rank,compute,<microseconds>
//	rank,read,<file>,<offset>,<length>
//	rank,write,<file>,<offset>,<length>
//	rank,barrier
//
// Pass a trace file as the argument, or run without one to use a built-in
// synthetic trace of 8 ranks doing interleaved small reads.
//
//	go run ./examples/replay [trace.csv]
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"dualpar"
)

func main() {
	var name string
	var src *strings.Reader
	if len(os.Args) > 1 {
		data, err := os.ReadFile(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		name = os.Args[1]
		src = strings.NewReader(string(data))
	} else {
		name = "synthetic"
		src = strings.NewReader(syntheticTrace())
	}
	trace, err := dualpar.ReplayTrace(name, src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("trace %s: %d ranks\n\n", name, trace.Ranks())
	for _, mode := range []dualpar.Mode{dualpar.Vanilla, dualpar.Prefetching, dualpar.DualParForced} {
		sim := dualpar.NewSimulation(dualpar.Defaults())
		prog := sim.AddProgram(trace, mode, dualpar.ProgramOptions{})
		if !sim.Run(time.Hour) {
			panic("did not finish")
		}
		fmt.Printf("%-12s elapsed %7.3fs  throughput %7.1f MB/s\n",
			mode.String()+":", prog.Elapsed().Seconds(), prog.Throughput())
	}
}

// syntheticTrace builds 8 ranks reading interleaved 8 KB blocks with short
// compute gaps — the access shape DualPar was built for.
func syntheticTrace() string {
	var b strings.Builder
	const ranks, calls, block = 8, 192, 8 << 10
	for rank := 0; rank < ranks; rank++ {
		for call := 0; call < calls; call++ {
			off := int64(call*ranks+rank) * block
			fmt.Fprintf(&b, "%d,compute,200\n", rank)
			fmt.Fprintf(&b, "%d,read,trace-data.bin,%d,%d\n", rank, off, block)
		}
	}
	return b.String()
}
