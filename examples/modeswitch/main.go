// Modeswitch: the paper's Fig 7 scenario as a runnable example. One
// mpi-io-test program streams alone; mid-run an hpio program joins and
// their requests start interfering at the shared data servers. With
// DualPar, the EMC daemon notices the seek-distance blowup, switches both
// programs to data-driven execution, and system throughput recovers.
//
//	go run ./examples/modeswitch
package main

import (
	"fmt"
	"time"

	"dualpar/internal/cluster"
	"dualpar/internal/core"
	"dualpar/internal/metrics"
	"dualpar/internal/workloads"
)

func main() {
	m := workloads.DefaultMPIIOTest()
	m.FileBytes = 128 << 20
	m.FileName = "stream-a.dat"
	m.BarrierEvery = 8
	h := workloads.DefaultHPIO()
	h.RegionCount = 2048
	h.FileName = "stream-b.dat"

	cl := cluster.New(cluster.DefaultConfig())
	cfg := core.DefaultConfig()
	cfg.SlotEvery = 100 * time.Millisecond
	runner := core.NewRunner(cl, cfg)

	p1 := runner.Add(m, core.ModeDualPar, core.AddOptions{RanksPerNode: 8})
	joinAt := 500 * time.Millisecond
	p2 := runner.Add(h, core.ModeDualPar, core.AddOptions{RanksPerNode: 8, StartAt: joinAt})

	// Sample system throughput while the simulation runs.
	var last int64
	window := 100 * time.Millisecond
	tp := metrics.Sample(cl.K, "system MB/s", window, 6*time.Second, func() float64 {
		s := cl.ServerStats()
		cur := s.BytesRead + s.BytesWritten
		d := cur - last
		last = cur
		return float64(d) / (1 << 20) / window.Seconds()
	})

	if !runner.Run(time.Hour) {
		panic("did not finish")
	}

	fmt.Print(metrics.ASCIIChart(tp, 72, 10))
	fmt.Printf("\nhpio joined at %.1fs\n", joinAt.Seconds())
	for _, pr := range []*core.ProgramRun{p1, p2} {
		fmt.Printf("%-12s finished at %5.2fs, mode switches:", pr.Prog().Name(), pr.EndedAt.Seconds())
		if len(pr.ModeSwitches) == 0 {
			fmt.Print(" none")
		}
		for _, sw := range pr.ModeSwitches {
			state := "off"
			if sw.On {
				state = "ON"
			}
			fmt.Printf(" [%.2fs %s]", sw.At.Seconds(), state)
		}
		fmt.Println()
	}
	fmt.Printf("throughput before join: %.1f MB/s, after join: %.1f MB/s\n",
		tp.Window(0, joinAt), tp.Window(joinAt, p1.EndedAt))
}
