// Collective: compares vanilla MPI-IO, two-phase collective I/O, and
// DualPar on the noncontig benchmark — 64 processes each reading one column
// of a 2-D array, the access pattern collective I/O was invented for.
//
//	go run ./examples/collective
package main

import (
	"fmt"
	"time"

	"dualpar/internal/cluster"
	"dualpar/internal/core"
	"dualpar/internal/workloads"
)

func main() {
	prog := workloads.DefaultNoncontig()
	prog.FileBytes = 64 << 20

	fmt.Printf("noncontig: %d procs, %d columns of %d-byte cells, %d MiB\n\n",
		prog.Procs, prog.Procs, prog.CellBytes(), prog.FileBytes>>20)
	fmt.Printf("%-12s %10s %12s %14s %12s\n", "scheme", "elapsed", "throughput", "disk accesses", "avg seek")

	for _, mode := range []core.Mode{core.ModeVanilla, core.ModeCollective, core.ModeDataDriven} {
		cl := cluster.New(cluster.DefaultConfig())
		runner := core.NewRunner(cl, core.DefaultConfig())
		pr := runner.Add(prog, mode, core.AddOptions{RanksPerNode: 8})
		if !runner.Run(time.Hour) {
			panic("did not finish")
		}
		st := cl.ServerStats()
		fmt.Printf("%-12s %9.2fs %9.1f MB/s %14d %9.0f sect\n",
			mode, pr.Elapsed().Seconds(),
			float64(pr.Instr().TotalBytes())/(1<<20)/pr.Elapsed().Seconds(),
			st.Accesses, st.AvgSeekDistance())
	}

	fmt.Println("\nCollective I/O merges each call's interleaved cells into large")
	fmt.Println("contiguous aggregator accesses; DualPar goes further by batching")
	fmt.Println("across calls up to each process's cache quota (paper §V-B).")
}
