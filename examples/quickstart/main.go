// Quickstart: run one MPI-IO workload under vanilla MPI-IO and under
// DualPar's data-driven mode on the paper's simulated platform, using the
// public dualpar package.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"dualpar"
)

func main() {
	// The workload: 64 processes read a 64 MiB file in 16 KB pieces, fully
	// sequential across processes (PVFS2's mpi-io-test benchmark).
	workload := dualpar.MPIIOTest(64, 64<<20, false)

	for _, mode := range []dualpar.Mode{dualpar.Vanilla, dualpar.DualParForced} {
		// A fresh simulation per run: 9 data servers with two-disk RAIDs
		// behind CFQ, a metadata server, compute nodes, Gigabit Ethernet,
		// PVFS2-style 64 KB striping — the paper's testbed.
		sim := dualpar.NewSimulation(dualpar.Defaults())
		prog := sim.AddProgram(workload, mode, dualpar.ProgramOptions{})

		if !sim.Run(time.Hour) {
			panic("simulation did not finish")
		}

		st := sim.Cluster().ServerStats()
		fmt.Printf("%-12s elapsed %6.2fs  throughput %6.1f MB/s  avg seek %6.0f sectors\n",
			mode.String()+":", prog.Elapsed().Seconds(), prog.Throughput(), st.AvgSeekDistance())
	}
	fmt.Println("\nDualPar's data-driven mode batches and sorts requests across all 64")
	fmt.Println("processes before they reach the disks; the vanilla run hands the disk")
	fmt.Println("scheduler one synchronous request per process at a time.")
}
