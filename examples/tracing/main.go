// Tracing: reproduces the paper's blktrace methodology (Figs 1c/d, 6).
// Two mpi-io-test instances run concurrently under vanilla MPI-IO and then
// under DualPar; the example prints each run's disk-access pattern on data
// server 1 and the seek statistics.
//
//	go run ./examples/tracing
package main

import (
	"fmt"
	"strings"
	"time"

	"dualpar/internal/cluster"
	"dualpar/internal/core"
	"dualpar/internal/disk"
	"dualpar/internal/workloads"
)

func main() {
	for _, mode := range []core.Mode{core.ModeVanilla, core.ModeDataDriven} {
		ccfg := cluster.DefaultConfig()
		ccfg.TraceServers = true
		cl := cluster.New(ccfg)
		runner := core.NewRunner(cl, core.DefaultConfig())
		for i := 0; i < 2; i++ {
			m := workloads.DefaultMPIIOTest()
			m.FileBytes = 48 << 20
			m.FileName = fmt.Sprintf("file-%d.dat", i)
			runner.Add(m, mode, core.AddOptions{RanksPerNode: 8})
		}
		if !runner.Run(time.Hour) {
			panic("did not finish")
		}
		entries := cl.Stores[0].Device().Trace().Entries()
		fmt.Printf("== %s: disk accesses on data server 1 ==\n", mode)
		scatter(entries)
		fmt.Printf("accesses %d, monotonicity %.2f, mean seek %.0f sectors\n\n",
			len(entries), disk.Monotonicity(entries), disk.MeanSeek(entries))
	}
	fmt.Println("Under vanilla the head hops between the two files' regions; under")
	fmt.Println("DualPar each cycle sweeps one region in ascending order (paper Fig 6).")
}

// scatter draws LBN over time.
func scatter(entries []disk.Entry) {
	if len(entries) == 0 {
		fmt.Println("(no entries)")
		return
	}
	const width, height = 72, 14
	minT, maxT := entries[0].At, entries[len(entries)-1].At
	minL, maxL := entries[0].LBN, entries[0].LBN
	for _, e := range entries {
		if e.LBN < minL {
			minL = e.LBN
		}
		if e.LBN > maxL {
			maxL = e.LBN
		}
	}
	if maxT == minT {
		maxT++
	}
	if maxL == minL {
		maxL++
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, e := range entries {
		x := int(float64(e.At-minT) / float64(maxT-minT) * float64(width-1))
		y := int(float64(e.LBN-minL) / float64(maxL-minL) * float64(height-1))
		grid[height-1-y][x] = '#'
	}
	for _, row := range grid {
		fmt.Printf("|%s|\n", row)
	}
}
