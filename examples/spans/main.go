// Spans: a walkthrough of the observability layer (internal/obs).
//
// A noncontiguous-read workload runs under DualPar with a Collector
// attached; every I/O request is traced as a span tree — request on the
// rank's track, net/server spans on the data servers' worker tracks, disk
// spans on the dispatcher tracks — and control-plane events (EMC decisions,
// cycle transitions, rank suspend/resume, cache hits) land as instants.
// The example writes a Chrome trace-event file loadable at ui.perfetto.dev,
// prints the latency summary table, and walks one request's span tree.
//
//	go run ./examples/spans
package main

import (
	"fmt"
	"os"
	"time"

	"dualpar/internal/cluster"
	"dualpar/internal/core"
	"dualpar/internal/obs"
	"dualpar/internal/workloads"
)

func main() {
	// 1. Attach a Collector before building the cluster. A nil Obs (the
	//    default) disables tracing at the cost of one nil check per site;
	//    the simulated timeline is identical either way.
	col := obs.NewCollector()
	ccfg := cluster.DefaultConfig()
	ccfg.Obs = col
	cl := cluster.New(ccfg)

	dcfg := core.DefaultConfig()
	dcfg.SlotEvery = 100 * time.Millisecond // more EMC decisions to look at
	runner := core.NewRunner(cl, dcfg)
	w := workloads.DefaultNoncontig()
	runner.Add(w, core.ModeDualPar, core.AddOptions{RanksPerNode: 8})
	if !runner.Run(time.Hour) {
		panic("did not finish")
	}

	// 2. Export the Chrome trace. Open it at ui.perfetto.dev: each rank,
	//    CRM home batch, server worker, and disk dispatcher is a track.
	f, err := os.Create("spans.json")
	if err != nil {
		panic(err)
	}
	if err := col.WriteTrace(f); err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
	fmt.Printf("wrote spans.json: %d spans, %d instants\n\n",
		len(col.Spans()), len(col.Instants()))

	// 3. The same data, aggregated: per-stage latency histograms plus the
	//    event counters the instants fed.
	if err := col.WriteSummary(os.Stdout); err != nil {
		panic(err)
	}

	// 4. Walk one request's span tree. Spans carry the RequestID they
	//    belong to; stages nest inside the request span in virtual time.
	var id obs.RequestID
	for _, s := range col.Spans() {
		if s.Stage == obs.StageRequest && s.ID != 0 {
			id = s.ID
			break
		}
	}
	fmt.Printf("\nspan tree of request %d:\n", id)
	for _, s := range col.Spans() {
		if s.ID != id {
			continue
		}
		indent := map[obs.Stage]string{
			obs.StageRequest: "",
			obs.StageNet:     "  ",
			obs.StageServer:  "  ",
			obs.StageDisk:    "    ",
		}[s.Stage]
		fmt.Printf("  %s%-7s %-22s %8.3fms..%8.3fms (%.3fms)\n",
			indent, s.Stage, s.Track,
			float64(s.Start)/float64(time.Millisecond),
			float64(s.End)/float64(time.Millisecond),
			float64(s.End-s.Start)/float64(time.Millisecond))
	}
}
